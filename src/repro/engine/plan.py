"""Query plans for ``ProbDB.explain``: operator tree + strategy decisions.

The UA algebra has exactly one expensive operator family — the
confidence closures (``conf``, ``conf_{ε,δ}``, ``cert``, and the conf
groups inside σ̂) — so an explain plan is the operator tree annotated, at
those nodes, with the confidence backend the session strategy picks.
Because the ``auto`` policy decides *per tuple* (it inspects each
tuple's DNF), explain runs the sub-plans feeding confidence operators
against a throwaway copy of the database and reports the per-method
tuple counts it observed; like ``EXPLAIN ANALYZE``, the report reflects
actual data, not just syntax.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.algebra.operators import (
    ApproxConf,
    ApproxSelect,
    BaseRel,
    Cert,
    Conf,
    Difference,
    Join,
    Literal,
    Poss,
    Product,
    Project,
    Query,
    Rename,
    RepairKey,
    Select,
    Union,
)
from repro.algebra.printer import unparse_expression
from repro.confidence.dissociation import dissociation_interval
from repro.confidence.dnf import Dnf

if TYPE_CHECKING:
    from repro.engine.strategies import ConfidenceStrategy
    from repro.urel.evaluate import UEvaluator
    from repro.util.parallel import ShardExecutor

__all__ = [
    "PlanNode",
    "ExplainReport",
    "explain_plan",
    "topk_plan",
    "BELOW_THRESHOLD",
    "BOUNDS_PRUNED",
]


@dataclass
class PlanNode:
    """One operator of the plan, with its strategy annotation (if any).

    ``path`` names the operator engine the relational operators of this
    node run on — ``columnar[numpy]`` for the vectorized integer-coded
    path, ``scalar[indexed]`` for the pure-Python indexed path — so a
    plan shows not only *which confidence method* each conf operator
    picked but also *which algebra implementation* executes the tree.
    """

    operator: str
    detail: str = ""
    strategy: str | None = None
    methods: dict[str, int] = field(default_factory=dict)
    children: tuple["PlanNode", ...] = ()
    path: str | None = None

    def render(self, indent: int = 0) -> str:
        pad = "  " * indent
        line = f"{pad}{self.operator}"
        if self.detail:
            line += f"[{self.detail}]"
        if self.path is not None:
            line += f"  ·{self.path}"
        if self.strategy is not None:
            chosen = ", ".join(
                f"{method} ×{count}" for method, count in sorted(self.methods.items())
            ) or "no tuples"
            line += f"  ← strategy={self.strategy}: {chosen}"
        return "\n".join([line] + [c.render(indent + 1) for c in self.children])


@dataclass
class ExplainReport:
    """The full plan for one query, as returned by ``ProbDB.explain``."""

    root: PlanNode
    strategy: str

    def chosen_methods(self) -> set[str]:
        """Every concrete confidence method some operator routed to."""
        out: set[str] = set()

        def visit(node: PlanNode) -> None:
            out.update(node.methods)
            for child in node.children:
                visit(child)

        visit(self.root)
        return out

    @property
    def text(self) -> str:
        return self.root.render()

    def __str__(self) -> str:
        return f"plan (session strategy: {self.strategy})\n{self.text}"


def _eval_rep_cached(evaluator: "UEvaluator", node: Query, cache: dict):
    """``evaluator._eval_rep(node)``'s representation, memoized per pass.

    Explain inspects actual data at every conf *and* product/join node,
    so without a memo a left-deep chain of k joins would re-evaluate its
    bottom relations O(k) times.  The *in-flight* representation is
    cached (columnar on the numpy path, scalar otherwise) — the very
    object the runtime's lift test inspects, so the cost-model
    annotations cannot diverge from what the evaluator would actually
    do with this node's children.  Keyed by node identity: the tree
    root keeps every node alive for the duration of the pass.
    """
    rep = cache.get(id(node))
    if rep is None:
        rep, _complete = evaluator._eval_rep(node)
        cache[id(node)] = rep
    return rep


def _eval_relation(evaluator: "UEvaluator", node: Query, cache: dict):
    """The materialized (scalar) relation for ``node``, via the rep memo."""
    return evaluator._materialize(_eval_rep_cached(evaluator, node, cache))


def _conf_observations(
    evaluator: "UEvaluator",
    strategy: "ConfidenceStrategy",
    child: Query,
    cache: dict,
    groups=None,
) -> tuple[dict[str, int], list[Dnf]]:
    """Evaluate ``child``; tally the backend chosen per tuple DNF + keep the DNFs.

    The DNF list doubles as the workload the shard cost model inspects:
    its length is what :meth:`~repro.util.parallel.ShardExecutor.plan_items`
    cuts, and each member's :meth:`ConfidenceStrategy.trial_budget` is
    what :meth:`~repro.util.parallel.ShardExecutor.plan_trials` cuts.
    """
    relation = _eval_relation(evaluator, child, cache)
    counts: dict[str, int] = {}
    dnfs: list[Dnf] = []
    targets = [relation] if groups is None else [
        relation.project(list(group)) for group in groups
    ]
    for target in targets:
        for row in target.possible_tuples().rows:
            dnf = Dnf.for_tuple(target, row, evaluator.db.w)
            dnfs.append(dnf)
            method = strategy.choose(dnf)
            counts[method] = counts.get(method, 0) + 1
    return counts, dnfs


def explain_plan(
    node: Query,
    evaluator: "UEvaluator",
    strategy: "ConfidenceStrategy",
    executor: "ShardExecutor | None" = None,
) -> ExplainReport:
    """Build the annotated plan for ``node``.

    ``evaluator`` must wrap a throwaway copy of the session database —
    explain executes repair-keys (extending that copy's W) to see the
    DNFs that confidence operators will face.  The evaluator's operator
    backend determines the ``path`` annotation of the relational nodes;
    a session shard ``executor`` annotates the confidence operators it
    fans out with ``·sharded[n]`` (n = configured workers).
    """
    return ExplainReport(_build(node, evaluator, strategy, executor, {}), strategy.name)


def _operator_path(evaluator) -> str:
    """Which algebra implementation the evaluator's backend runs.

    Names the configured engine; at runtime individual relations outside
    the columnar envelope (tiny, or too many condition variables) fall
    back to the indexed scalar operators per relation.
    """
    backend = getattr(evaluator, "backend", "python")
    return "columnar[numpy]" if backend == "numpy" else "scalar[indexed]"


BELOW_THRESHOLD = "below-threshold"
"""Annotation suffix: the executor would not fan this workload out.

The README's "when serial wins" guidance, mechanized: a sharded session
pays nothing for workloads under the profitable shard size — they run
serially, in process — but a plan that *says so* lets an operator reading
``explain`` output see that raising ``workers`` cannot help this query.
"""


BOUNDS_PRUNED = "bounds-pruned"
"""Annotation suffix on σ̂ nodes: ``bounds-pruned[k/n]`` means k of the
n group-confidence DNFs this selection decides have *exact* dissociation
bound intervals — the Theorem 6.7 driver certifies those values without
drawing a Karp–Luby trial (see :mod:`repro.confidence.dissociation`),
so only the remaining n−k consume round budget."""


def _sharded_path(executor, fans_out: bool | None = None) -> str | None:
    """The ``sharded[n]`` annotation for fanned-out operators.

    Shown whenever the session carries an executor: the *plan* (and the
    results) are those of the sharded code path even at ``workers=1``,
    where the shards merely run serially.  ``fans_out=False`` appends
    the ``below-threshold`` warning — the workload is under the
    profitable shard size, so every worker count runs it serially.
    """
    if executor is None:
        return None
    path = f"sharded[{executor.workers}]"
    if fans_out is False:
        path += f"·{BELOW_THRESHOLD}"
    return path


def _conf_fans_out(executor, strategy, dnfs) -> bool | None:
    """Whether a conf-family workload clears the profitable shard size.

    Mirrors the runtime's two levers: the per-tuple DNF list shards when
    ``plan_items`` cuts it, and a batch too short to cut still fans out
    when some tuple's Monte-Carlo budget alone fills worker blocks
    (``plan_trials`` of :meth:`ConfidenceStrategy.trial_budget`).
    """
    if executor is None:
        return None
    if len(executor.plan_items(len(dnfs))) > 1:
        return True
    return any(len(executor.plan_trials(strategy.trial_budget(dnf))) > 1 for dnf in dnfs)


def _algebra_path(node: Query, evaluator, executor, cache: dict) -> str:
    """The operator-engine annotation for a product/join node.

    On the columnar path with a session executor, the pair merge may
    shard.  The fan-out test consults the *same* schedule the operator
    runs: products (and joins without shared attributes, which fall to
    the all-pairs path) ask ``plan_all_pairs`` over the child row
    counts; key joins ask ``plan_pairs`` over n₁·n₂ — an upper bound on
    the candidate pairs the key match emits, so a join annotated
    ``below-threshold`` certainly runs serially while one annotated
    sharded may still fall back if few keys match.  Below the
    profitable size the node carries the ``below-threshold`` warning.
    The scalar path never shards and stays bare.
    """
    path = _operator_path(evaluator)
    if executor is None or path != "columnar[numpy]":
        return path
    left = _eval_rep_cached(evaluator, node.left, cache)
    right = _eval_rep_cached(evaluator, node.right, cache)
    # Consult the evaluator's own lift test, on the same in-flight
    # representations the runtime would hold here: operands the runtime
    # refuses to make columnar (outside the row/variable envelope,
    # cross-type conflation taint, merged condition layout too wide)
    # run the scalar serial operator — annotating them "sharded" would
    # promise a fan-out that cannot happen — while columnar-born
    # intermediates stay columnar however small they are.
    if evaluator._lift_pair(left, right) is None:
        return "scalar[indexed]"
    n1, n2 = len(left), len(right)
    all_pairs = isinstance(node, Product) or not (
        set(left.columns) & set(right.columns)
    )
    if all_pairs:
        fans_out = len(executor.plan_all_pairs(n1, n2)) > 1
    else:
        fans_out = len(executor.plan_pairs(n1 * n2)) > 1
    return f"{path}·{_sharded_path(executor, fans_out)}"


def _build(node: Query, evaluator, strategy, executor=None, cache=None) -> PlanNode:
    if cache is None:
        cache = {}
    children = tuple(
        _build(c, evaluator, strategy, executor, cache) for c in _children_of(node)
    )
    path = _operator_path(evaluator)

    if isinstance(node, BaseRel):
        return PlanNode("scan", node.name)
    if isinstance(node, Literal):
        return PlanNode("literal", f"{len(node.relation)} rows")
    if isinstance(node, Select):
        return PlanNode(
            "select", unparse_expression(node.condition), children=children, path=path
        )
    if isinstance(node, Project):
        return PlanNode(
            "project",
            ", ".join(name for _, name in node.items),
            children=children,
            path=path,
        )
    if isinstance(node, Rename):
        return PlanNode(
            "rename",
            ", ".join(f"{a}->{b}" for a, b in node.mapping),
            children=children,
            path=path,
        )
    if isinstance(node, Product):
        return PlanNode(
            "product",
            children=children,
            path=_algebra_path(node, evaluator, executor, cache),
        )
    if isinstance(node, Join):
        return PlanNode(
            "join",
            children=children,
            path=_algebra_path(node, evaluator, executor, cache),
        )
    if isinstance(node, Union):
        return PlanNode("union", children=children, path=path)
    if isinstance(node, Difference):
        return PlanNode("difference", children=children)
    if isinstance(node, RepairKey):
        key = ", ".join(node.key) or "∅"
        return PlanNode("repair-key", f"{key} @ {node.weight}", children=children)
    if isinstance(node, Poss):
        return PlanNode("poss", children=children)
    if isinstance(node, Conf):
        counts, dnfs = _conf_observations(evaluator, strategy, node.child, cache)
        return PlanNode(
            "conf",
            node.p_name,
            strategy=strategy.name,
            methods=counts,
            children=children,
            path=_sharded_path(executor, _conf_fans_out(executor, strategy, dnfs)),
        )
    if isinstance(node, Cert):
        counts, _dnfs = _conf_observations(evaluator, strategy, node.child, cache)
        return PlanNode(
            "cert", strategy=strategy.name, methods=counts, children=children
        )
    if isinstance(node, ApproxConf):
        counts, dnfs = _conf_observations(evaluator, strategy, node.child, cache)
        n_tuples = sum(counts.values())
        # aconf always runs Karp–Luby at the node's own (ε, δ); the cost
        # model must rate its budgets, not the session strategy's.
        from repro.engine.strategies import KarpLuby

        node_sampler = KarpLuby(node.eps, node.delta)
        return PlanNode(
            "aconf",
            f"ε={node.eps}, δ={node.delta}",
            strategy="karp-luby",
            methods={"karp-luby": n_tuples},
            children=children,
            path=_sharded_path(executor, _conf_fans_out(executor, node_sampler, dnfs)),
        )
    if isinstance(node, ApproxSelect):
        counts, dnfs = _conf_observations(
            evaluator, strategy, node.child, cache, groups=node.groups
        )
        # σ̂ fans out over its *candidate tuples* (one Figure 3 decision
        # each), which the runtime builds as the natural join of the
        # group key sets — a count that can far exceed the sum of the
        # per-group tuple counts for multi-group predicates.  Build the
        # same join over the observed (present) keys; phantom-derived
        # keys from approximate subtrees can only add candidates, so a
        # node annotated as fanning out certainly does.  A narrow
        # selection still fans out when some group DNF's Monte-Carlo
        # budget alone fills worker blocks — the sequential candidate
        # loop shards each value's trial allocation (the session
        # strategy's budget stands in for the runtime's l·|F| rounds).
        fans_out = None
        if executor is not None:
            relation = _eval_relation(evaluator, node.child, cache)
            joined = None
            for group in node.groups:
                keys = relation.project(list(group)).possible_tuples()
                joined = keys if joined is None else joined.natural_join(keys)
            fans_out = len(executor.plan_items(len(joined.rows))) > 1 or any(
                len(executor.plan_trials(strategy.trial_budget(dnf))) > 1
                for dnf in dnfs
            )
        # Group DNFs the driver's bound pruning certifies outright: not
        # degenerate (those are free for every method) but with an exact
        # dissociation interval — e.g. repair-key alternatives.
        pruned = sum(
            1
            for dnf in dnfs
            if not (dnf.is_empty or dnf.is_trivially_true or dnf.size == 1)
            and dissociation_interval(dnf).is_exact
        )
        path = _sharded_path(executor, fans_out)
        if pruned:
            tag = f"{BOUNDS_PRUNED}[{pruned}/{len(dnfs)}]"
            path = tag if path is None else f"{path}·{tag}"
        return PlanNode(
            "approx-select",
            unparse_expression(node.predicate),
            strategy=strategy.name,
            methods=counts,
            children=children,
            path=path,
        )
    raise TypeError(f"cannot explain query node {node!r}")


def topk_plan(
    node: Query,
    evaluator: "UEvaluator",
    strategy: "ConfidenceStrategy",
    k: int,
    executor: "ShardExecutor | None" = None,
) -> ExplainReport:
    """The annotated plan for ``ProbDB.topk(node, k)``.

    The racing driver sits above the query like one big conf-family
    operator: every candidate tuple of the result feeds a Karp–Luby
    race unless its dissociation enclosure decides it at stage 1.  The
    root is annotated ``topk[k]·bounds-pruned[m/n]`` — m of the n
    candidate DNFs have *exact* enclosures, so they are ranked without
    drawing a single trial — plus the usual ``sharded[w]`` marker when
    the session fans rounds out.
    """
    cache: dict = {}
    child = _build(node, evaluator, strategy, executor, cache)
    relation = _eval_relation(evaluator, node, cache)
    dnfs = [
        Dnf.for_tuple(relation, row, evaluator.db.w)
        for row in relation.possible_tuples().rows
    ]
    counts: dict[str, int] = {}
    for dnf in dnfs:
        method = strategy.choose(dnf)
        counts[method] = counts.get(method, 0) + 1
    pruned = sum(
        1
        for dnf in dnfs
        if dnf.is_empty
        or dnf.is_trivially_true
        or dnf.size == 1
        or dissociation_interval(dnf).is_exact
    )
    path = f"topk[{k}]·{BOUNDS_PRUNED}[{pruned}/{len(dnfs)}]"
    sharded = _sharded_path(executor, _conf_fans_out(executor, strategy, dnfs))
    if sharded is not None:
        path = f"{path}·{sharded}"
    root = PlanNode(
        "topk",
        strategy=strategy.name,
        methods=counts,
        children=(child,),
        path=path,
    )
    return ExplainReport(root, strategy.name)


def _children_of(node: Query) -> tuple[Query, ...]:
    from repro.algebra.operators import children

    return children(node)
