"""The :class:`ProbDB` facade — one front door for the whole system.

The paper describes a single coherent engine: an algebra whose queries
compositionally mix exact confidence (Theorem 3.4), the Karp–Luby
``conf_{ε,δ}`` (Corollary 4.3), approximate selection (Section 6), and
the Theorem 6.7 driver.  ``repro.connect(...)`` wires all of those to
one session object:

>>> import repro
>>> db = repro.connect({"Coins": coins, "Faces": faces})
>>> db.assign("R", "project[CoinType](repair-key[@ Count](Coins))")
>>> result = db.query(rel("R").conf())          # builder Q objects ...
>>> result = db.query("conf[P](R)")             # ... or parser strings
>>> print(db.explain("conf[P](R)"))             # chosen plan/strategy

A session owns one U-relational database (the W table grows across
assignments, as in Example 2.2), one RNG (seeded once — every stochastic
subroutine derives from it), one confidence strategy (see
:mod:`repro.engine.strategies`), and one memo cache keyed on query
fingerprint and database/W versions, so repeated confidence computations
in a session are free.
"""

from __future__ import annotations

import random
import threading
import time
from collections.abc import Mapping, Sequence

from repro.algebra.builder import Q
from repro.algebra.operators import BaseRel, Query
from repro.algebra.parser import parse_query, parse_session
from repro.algebra.relations import Relation
from repro.confidence.batch import resolve_backend
from repro.confidence.dissociation import DEFAULT_BOUND_BUDGET
from repro.confidence.dnf import Dnf
from repro.engine.cache import MemoCache, query_fingerprint
from repro.engine.plan import ExplainReport, explain_plan, topk_plan
from repro.engine.result import EngineResult
from repro.engine.strategies import (
    DEFAULT_DELTA,
    DEFAULT_EPS,
    ConfidenceReport,
    ConfidenceStrategy,
    compute_batch_with_executor,
    compute_with_executor,
    resolve_strategy,
)
from repro.urel.evaluate import UEvaluator
from repro.urel.udatabase import UDatabase
from repro.urel.urelation import URelation
from repro.util.parallel import ShardExecutor, default_workers
from repro.util.rng import ensure_rng, spawn_rng

__all__ = ["ProbDB", "connect"]

# Concrete confidence methods whose recomputation is a pure function of
# the DNF — no trial drawn, no session entropy spent.  Entries produced
# by them are safe for a *cross-session* budget evictor to drop: a later
# identical request recomputes bit-identically without shifting the
# session's sampled stream.  Everything else (sampling methods, even on
# degenerate DNFs their batch machinery seeds shards; third-party
# methods we cannot vouch for) is pinned as volatile.  Dissociation
# bounds qualify: exact Fraction arithmetic over the clause set, never a
# trial.
_RECOMPUTE_PURE_METHODS = frozenset(
    {"exact-decomposition", "exact-enumeration", "dissociation-bounds"}
)


def _report_volatile(report: ConfidenceReport) -> bool:
    return not (report.exact and report.method in _RECOMPUTE_PURE_METHODS)


def connect(
    source: "UDatabase | Mapping[str, Relation] | ProbDB",
    strategy: str | ConfidenceStrategy = "auto",
    eps: float | None = None,
    delta: float | None = None,
    rng: random.Random | int | None = None,
    copy: bool = False,
    backend: str | None = None,
    workers: "int | ShardExecutor | None" = None,
) -> "ProbDB":
    """Open a :class:`ProbDB` session on ``source``.

    ``source`` may be a :class:`UDatabase`, a mapping of names to
    complete :class:`Relation` objects (lifted with every relation
    marked complete), or another session (reuses its database).
    ``strategy`` names the confidence backend (default ``auto``);
    ``eps``/``delta`` parameterize its approximate methods; ``rng``
    seeds every stochastic subroutine of the session; ``backend``
    selects both the Monte-Carlo trial engine *and* the relational
    operator engine (``"numpy"`` draws trials as vectorized blocks and
    runs the algebra on the columnar U-relation representation,
    ``"python"`` is the dependency-free scalar path; default
    auto-detection — see :mod:`repro.util.backends`).  With ``copy``
    the session works on a private copy of the database.

    ``workers`` opts the session into sharded execution
    (:mod:`repro.util.parallel`): confidence batches, Monte-Carlo trial
    budgets, driver round allocations, σ̂ candidate decisions, and the
    columnar algebra's product/join pair merges fan out over a process
    pool.  Results are *bit-identical for every worker count*
    (``workers=1`` runs the same shard plan serially); omitting
    ``workers`` keeps the unsharded single-stream code path.  Pass a
    :class:`~repro.util.parallel.ShardExecutor` instance instead of an
    int to customize the shard plan parameters or to share one pool
    across sessions.  The ``REPRO_WORKERS`` environment variable
    supplies a default when the argument is left ``None``.

    Example::

        import repro

        db = repro.connect(
            {"R": repro.Relation.from_rows(("A",), [(1,), (2,)])},
            rng=0,
        )
        result = db.query("select[A = 1](R)")
        report = result.confidence((1,))    # exact Fraction(1) — R is complete
        db.close()                          # or: with repro.connect(...) as db
    """
    return ProbDB(
        source,
        strategy=strategy,
        eps=eps,
        delta=delta,
        rng=rng,
        copy=copy,
        backend=backend,
        workers=workers,
    )


class _EngineEvaluator(UEvaluator):
    """A :class:`UEvaluator` whose ``conf`` goes through the strategy registry."""

    def __init__(self, db, strategy, rng, engine, copy_db=False, backend=None, executor=None):
        # cert and σ̂ conf-joins must stay exact (Example 5.7); honor an
        # explicitly-exact session strategy there, default to decomposition.
        conf_method = "enumeration" if strategy.name == "exact-enumeration" else "decomposition"
        super().__init__(
            db,
            conf_method=conf_method,
            rng=rng,
            copy_db=copy_db,
            backend=backend,
            executor=executor,
        )
        self.strategy = strategy
        self.engine = engine

    def eval_conf(self, child, p_name):
        return self.engine._confidence_relation(child, p_name, self)


class ProbDB:
    """A probabilistic-database session: data, strategy, RNG, cache.

    Usually constructed via :func:`repro.connect`.  The session owns a
    U-relational database, a confidence strategy, one seeded RNG that
    every stochastic subroutine derives from (same seed + same request
    sequence = bit-identical answers), and a per-session memo cache.

    The public surface, in the order a session typically uses it::

        db = repro.connect(source, rng=7)
        db.assign("R", "repair-key[@ Count](Coins)")   # name := query
        db.query(q)                  # evaluate (EngineResult)
        db.confidence(q)             # conf of every result tuple
        db.confidence_all(q)         # {data tuple: ConfidenceReport}, batched
        db.evaluate_with_guarantee(q, delta=0.05, eps0=0.1)   # Thm 6.7 driver
        db.explain(q)                # the plan, with per-operator methods
        db.close()                   # or use the session as a context manager

    Queries are surface-syntax strings or ``repro.rel(...)`` builder
    objects throughout.
    """

    def __init__(
        self,
        source: "UDatabase | Mapping[str, Relation] | ProbDB",
        strategy: str | ConfidenceStrategy = "auto",
        eps: float | None = None,
        delta: float | None = None,
        rng: random.Random | int | None = None,
        copy: bool = False,
        cache_size: int | None = 1024,
        backend: str | None = None,
        workers: "int | ShardExecutor | None" = None,
    ):
        self.db = self._coerce(source, copy)
        # The facade's single ensure_rng call site: every stochastic
        # component below (Karp–Luby conf, aconf, the driver) draws from
        # streams derived from this one generator.
        self._rng = ensure_rng(rng)
        self._eps = eps
        self._delta = delta
        self.backend = resolve_backend(backend)
        self.strategy = resolve_strategy(
            strategy, eps=eps, delta=delta, backend=self.backend
        )
        if workers is None:
            workers = default_workers()
        # The session's one fan-out primitive; None keeps the legacy
        # unsharded code path (results byte-compatible with older
        # sessions).  The pool itself is lazy — sessions that never
        # shard a workload never fork.  An existing ShardExecutor is
        # accepted as-is but *borrowed* (custom plan parameters, or a
        # pool shared across sessions): :meth:`close` only tears down
        # executors the session constructed itself, so closing one
        # sharing session cannot silently degrade the others to serial.
        if isinstance(workers, ShardExecutor):
            self.executor = workers
            self._owns_executor = False
        else:
            self.executor = ShardExecutor(workers) if workers is not None else None
            self._owns_executor = self.executor is not None
        self._cache = MemoCache(cache_size)
        # close() must be idempotent and safe to race from many threads
        # (an async server closes sessions while sibling requests are in
        # flight); the flag records intent, the lock makes first-close
        # win exactly once.
        self._close_lock = threading.Lock()
        self._closed = False
        # Parsed query texts are cached so a repeated string is the *same*
        # plan (same repair-key op_ids → same random variables, and memo
        # cache keys that can actually repeat).
        self._parse_cache: dict[str, Query] = {}
        self._evaluator = _EngineEvaluator(
            self.db,
            self.strategy,
            self._rng,
            self,
            copy_db=False,
            backend=self.backend,
            executor=self.executor,
        )

    @staticmethod
    def _coerce(source, copy: bool) -> UDatabase:
        if isinstance(source, ProbDB):
            source = source.db
        if isinstance(source, UDatabase):
            return source.copy() if copy else source
        if isinstance(source, Mapping):
            lifted = {
                name: rel if isinstance(rel, Relation) else Relation.from_rows(*rel)
                for name, rel in source.items()
            }
            return UDatabase.from_complete(lifted)
        raise TypeError(
            f"cannot connect to {type(source).__name__}; expected UDatabase, "
            f"mapping of Relations, or ProbDB"
        )

    # ------------------------------------------------------------ queries
    def _resolve(self, query: "Query | Q | str") -> tuple[Query, str | None]:
        """Accept builder ``Q`` objects, AST nodes, and parser strings."""
        if isinstance(query, str):
            text = query.strip()
            node = self._parse_cache.get(text)
            if node is None:
                node = BaseRel(text) if text in self.db.relations else parse_query(text)
                self._parse_cache[text] = node
            return node, text
        if isinstance(query, Q):
            return query.q, None
        if isinstance(query, Query):
            return query, None
        raise TypeError(f"cannot interpret query of type {type(query).__name__}")

    def query(self, query: "Query | Q | str") -> EngineResult:
        """Evaluate a query (without storing its result).

        Accepts surface syntax or the ``repro.rel`` builder::

            db.query("select[CoinType = 'fair'](Coins)")
            db.query(repro.rel("Coins").select(repro.col("CoinType") == "fair"))
        """
        node, source = self._resolve(query)
        started = time.perf_counter()
        if self._cache.enabled:
            fingerprint = query_fingerprint(node)
            token = self.strategy.cache_token
            if self.executor is not None:
                # A sharded session's algebra runs the sharded pair-merge
                # schedule; results are bit-identical at any worker count
                # *given the plan*, so entries are keyed on the plan token
                # (the merge schedule), mirroring the conf cache keys.
                token = token + (self.executor.plan_token,)
            cached = self._cache.get(
                ("query", fingerprint, token, self.db.version, self.db.w.version)
            )
            if cached is None:
                # A query whose evaluation *drew* from the session RNG
                # (a sampled conf operator missing the conf cache) is
                # volatile: recomputing it after a cross-session budget
                # eviction would redraw from a later stream position, so
                # the global evictor must leave it alone.  Comparing RNG
                # state before/after captures exactly "did this draw".
                rng_before = self._rng.getstate()
                cached = self._evaluator.eval(node)
                # Key on the *post*-evaluation versions: a repair-key query
                # extends W on its first run but is idempotent afterwards
                # (``ensure`` + fixed op_ids), so the next identical call
                # sees exactly these versions and hits.
                self._cache.put(
                    ("query", fingerprint, token, self.db.version, self.db.w.version),
                    cached,
                    volatile=self._rng.getstate() != rng_before,
                )
        else:
            cached = self._evaluator.eval(node)
        relation, complete = cached
        elapsed = time.perf_counter() - started
        return EngineResult(relation, complete, node, self, elapsed, source)

    def assign(self, name: str, query: "Query | Q | str") -> EngineResult:
        """``name := query`` — evaluate and store (Example 2.2 session style).

        The stored relation is queryable by name from then on::

            db.assign("R", "repair-key[@ Count](Coins)")   # draw a coin
            db.query("project[CoinType](R)")
        """
        result = self.query(query)
        self.db.set_relation(name, result.relation, complete=result.complete)
        return result

    def run_script(self, script: str) -> dict[str, EngineResult]:
        """Run a ``Name := query;`` script; returns the named results in order.

        Like the database state itself, a name assigned twice keeps its
        *latest* result in the returned mapping (every assignment still
        executes).

        Example::

            results = db.run_script('''
                R := repair-key[@ Count](Coins);
                T := project[CoinType](R);
            ''')
            results["T"].rows
        """
        return {
            name: self.assign(name, node) for name, node in parse_session(script)
        }

    def confidence(
        self,
        query: "Query | Q | str",
        p_name: str = "P",
        strategy: str | ConfidenceStrategy | None = None,
    ) -> EngineResult:
        """``conf`` of a query's result: ⟨t, Pr[t ∈ result]⟩ per possible tuple.

        Uses the session strategy unless ``strategy`` overrides it::

            u = db.confidence("project[CoinType](R)")          # columns + P
            u = db.confidence("R", strategy="karp-luby")       # force the FPRAS
        """
        node, source = self._resolve(query)
        inner = self.query(node)
        chosen = (
            self.strategy
            if strategy is None
            else resolve_strategy(
                strategy, eps=self._eps, delta=self._delta, backend=self.backend
            )
        )
        started = time.perf_counter()
        relation = self._confidence_relation(
            inner.relation, p_name, self._evaluator, chosen
        )
        elapsed = time.perf_counter() - started
        return EngineResult(relation, True, node, self, inner.elapsed + elapsed, source)

    def evaluate_with_guarantee(
        self,
        query: "Query | Q | str",
        delta: float,
        eps0: float,
        rng: random.Random | int | None = None,
        **kwargs,
    ):
        """The Theorem 6.7 driver on this session's database.

        Returns a :class:`repro.core.driver.DriverReport`; the driver
        works on a private copy of the database.  ``rng`` defaults to a
        stream derived from the session seed; the session's trial
        ``backend`` and shard ``executor`` are used unless overridden
        via ``backend=...`` / ``executor=...``.

        Dissociation bound pruning is ON by default: σ̂ candidates whose
        guaranteed bound intervals already decide the predicate are
        certified with error 0 before any sampling budget is allocated
        (``DriverReport.bounds_certified`` counts them).  Pass
        ``bounds_budget=0`` to disable, or another Shannon-expansion
        budget to tune how hard the bound solver tries (see
        :mod:`repro.confidence.dissociation`).  Example::

            report = db.evaluate_with_guarantee(
                "aselect[P > 0.3 ; conf(A) as P](R)", delta=0.05, eps0=0.1
            )
            report.bounds_certified   # candidates decided without trials
        """
        from repro.core.driver import evaluate_with_guarantee as _driver

        node, _source = self._resolve(query)
        generator = spawn_rng(self._rng) if rng is None else ensure_rng(rng)
        kwargs.setdefault("backend", self.backend)
        kwargs.setdefault("executor", self.executor)
        kwargs.setdefault("bounds_budget", DEFAULT_BOUND_BUDGET)
        return _driver(node, self.db, delta=delta, eps0=eps0, rng=generator, **kwargs)

    def topk(
        self,
        query: "Query | Q | str",
        k: int,
        eps: float | None = None,
        delta: float | None = None,
        bounds_budget: int = DEFAULT_BOUND_BUDGET,
    ):
        """The k most probable result tuples, by confidence-interval racing.

        Returns a :class:`repro.core.topk.TopKReport` whose ``entries``
        are the ranked answers (most probable first, ties broken by the
        deterministic candidate order).  Candidates whose dissociation
        bound enclosure already clears or misses the k-th boundary are
        decided with zero trials and error 0; only candidates whose
        Lemma 5.1 intervals still overlap the running k-th threshold
        keep drawing trials, so a wide selection costs a fraction of a
        full :meth:`confidence_all` at the same (ε, δ)::

            report = db.topk("project[CoinType](R)", 10)
            report.rows              # the ranked data tuples
            report.bounds_decided    # candidates settled without sampling

        ``eps``/``delta`` default to the session's accuracy targets; an
        exact session strategy routes to exact confidence computation
        instead (error 0, nothing sampled).  Results are memoized like
        queries and bit-identical for every worker count.
        """
        node, _source = self._resolve(query)
        if isinstance(k, bool) or not isinstance(k, int) or k <= 0:
            raise ValueError(f"k must be a positive integer, got {k!r}")
        eps_v = (DEFAULT_EPS if self._eps is None else self._eps) if eps is None else eps
        delta_v = (
            (DEFAULT_DELTA if self._delta is None else self._delta)
            if delta is None
            else delta
        )
        result = self.query(node)
        if not self._cache.enabled:
            return self._topk_compute(result, k, eps_v, delta_v, bounds_budget)
        token = self.strategy.cache_token
        if self.executor is not None:
            token = token + (self.executor.plan_token,)
        key = (
            "topk",
            query_fingerprint(node),
            k,
            eps_v,
            delta_v,
            bounds_budget,
            token,
            self.db.version,
            self.db.w.version,
        )
        cached = self._cache.get(key)
        if cached is None:
            # A race that sampled consumed session RNG: volatile, the
            # cross-session evictor must leave it alone (same rule as
            # sampled query evaluations).
            rng_before = self._rng.getstate()
            cached = self._topk_compute(result, k, eps_v, delta_v, bounds_budget)
            self._cache.put(key, cached, volatile=self._rng.getstate() != rng_before)
        return cached

    def _topk_compute(self, result: EngineResult, k, eps, delta, bounds_budget):
        from repro.core.topk import TopKEntry, TopKReport, race_topk

        rows = result.rows
        dnfs = [Dnf.for_tuple(result.relation, row, self.db.w) for row in rows]
        if self.strategy.name in ("exact-decomposition", "exact-enumeration"):
            # Strategy routing: an exact session owes exact answers, so
            # the ranking comes from exact confidences — no race, no
            # trials, error 0 (and the memo entry is freely evictable).
            reports = self._compute_confidence_batch(dnfs, self.strategy)
            order = sorted(range(len(rows)), key=lambda i: (-reports[i].value, i))
            entries = tuple(
                TopKEntry(
                    row=tuple(rows[i]),
                    value=reports[i].value,
                    lower=reports[i].value,
                    upper=reports[i].value,
                    exact=True,
                    trials=0,
                    source="exact",
                )
                for i in order[:k]
            )
            return TopKReport(entries, k, eps, delta, len(rows), 0, 0, 0, 0, 0)
        return race_topk(
            rows,
            dnfs,
            k,
            eps,
            delta,
            rng=self._rng,
            backend=self.backend,
            executor=self.executor,
            bounds_budget=bounds_budget,
        )

    def explain(self, query: "Query | Q | str") -> ExplainReport:
        """The plan for ``query``, with the strategy chosen per conf operator.

        Runs the confidence sub-plans against a throwaway copy of the
        database (``EXPLAIN ANALYZE`` style), so ``auto`` decisions are
        reported from the DNFs the operators will actually face.

        ``print(db.explain(q))`` renders the annotated plan tree (see
        ``docs/strategies.md`` for the annotation glossary)::

            print(db.explain("conf[P](T)"))
        """
        node, _source = self._resolve(query)
        # Fixed-seed scratch RNG: explain only *chooses* methods (never
        # samples for answers), and a read-only introspection call must not
        # perturb the session generator or later stochastic results.  The
        # scratch evaluator shares the session executor — one pool serves
        # both the confidence and the algebra layer, and close() tears it
        # down once.
        scratch = UEvaluator(
            self.db,
            conf_method="decomposition",
            rng=random.Random(0),
            copy_db=True,
            backend=self.backend,
            executor=self.executor,
        )
        return explain_plan(node, scratch, self.strategy, executor=self.executor)

    def explain_topk(self, query: "Query | Q | str", k: int) -> ExplainReport:
        """The plan for ``topk(query, k)``, with the stage-1 pruning census.

        Like :meth:`explain`, runs against a throwaway copy with a
        fixed-seed scratch RNG; the root node is annotated
        ``topk[k]·bounds-pruned[m/n]`` — m of the n candidates are
        decided by their dissociation enclosures before any sampling::

            print(db.explain_topk("project[CoinType](R)", 2))
        """
        node, _source = self._resolve(query)
        if isinstance(k, bool) or not isinstance(k, int) or k <= 0:
            raise ValueError(f"k must be a positive integer, got {k!r}")
        scratch = UEvaluator(
            self.db,
            conf_method="decomposition",
            rng=random.Random(0),
            copy_db=True,
            backend=self.backend,
            executor=self.executor,
        )
        return topk_plan(node, scratch, self.strategy, k, executor=self.executor)

    # ------------------------------------------------------------ confidence internals
    def tuple_confidence(self, relation: URelation, row: Sequence) -> ConfidenceReport:
        """Confidence of one data tuple of ``relation``, cached per session.

        The row-level primitive behind :meth:`EngineResult.confidence`::

            result = db.query("project[CoinType](R)")
            db.tuple_confidence(result.relation, ("fair",))
        """
        dnf = Dnf.for_tuple(relation, row, self.db.w)
        return self._compute_confidence(dnf, self.strategy)

    def _conf_cache_key(self, dnf: Dnf, strategy: ConfidenceStrategy) -> tuple:
        # A sharded session merges sampled estimates by the executor's
        # plan — a different merge schedule than the unsharded stream —
        # so its entries carry the plan token and never cross-hit with
        # entries computed under another schedule.
        token = strategy.cache_token
        if self.executor is not None:
            token = token + (self.executor.plan_token,)
        return ("conf", frozenset(dnf.members), self.db.w.version, token)

    def _compute_confidence(
        self, dnf: Dnf, strategy: ConfidenceStrategy
    ) -> ConfidenceReport:
        if not self._cache.enabled:
            return compute_with_executor(strategy, dnf, self._rng, self.executor)
        key = self._conf_cache_key(dnf, strategy)
        report = self._cache.get(key)
        if report is None:
            report = compute_with_executor(strategy, dnf, self._rng, self.executor)
            # Sampled reports are volatile: a recompute would consume
            # session RNG state, so the cross-session budget evictor
            # must not remove them (exact reports recompute identically
            # and draw nothing — freely evictable).
            self._cache.put(key, report, volatile=_report_volatile(report))
        return report

    def _compute_confidence_batch(
        self, dnfs: Sequence[Dnf], strategy: ConfidenceStrategy
    ) -> list[ConfidenceReport]:
        """Confidences for many tuples in one batched pass.

        Cache-aware: memoized DNFs are answered from the session cache;
        only the misses go to the strategy's :meth:`compute_batch`, which
        draws their trials as shared/vectorized blocks instead of N
        independent sampler runs.
        """
        if not self._cache.enabled:
            return list(
                compute_batch_with_executor(strategy, dnfs, self._rng, self.executor)
            )
        reports: list[ConfidenceReport | None] = []
        # Distinct tuples often share one condition set (same cache key);
        # compute each distinct DNF once per batch, as the sequential
        # path effectively did.
        misses: dict[tuple, int] = {}
        for i, dnf in enumerate(dnfs):
            key = self._conf_cache_key(dnf, strategy)
            cached = self._cache.get(key)
            reports.append(cached)
            if cached is None:
                misses.setdefault(key, i)
        if misses:
            fresh = compute_batch_with_executor(
                strategy, [dnfs[i] for i in misses.values()], self._rng, self.executor
            )
            by_key = dict(zip(misses, fresh))
            for key, report in by_key.items():
                self._cache.put(key, report, volatile=_report_volatile(report))
            for i, dnf in enumerate(dnfs):
                if reports[i] is None:
                    reports[i] = by_key[self._conf_cache_key(dnf, strategy)]
        return reports

    def confidence_all(
        self,
        query: "Query | Q | str",
        strategy: str | ConfidenceStrategy | None = None,
    ) -> dict[tuple, ConfidenceReport]:
        """Pr[t ∈ result] for EVERY possible tuple, in one batched pass.

        Where ``result.confidence(row)`` runs one sampler per call,
        this evaluates the query once, builds every tuple's DNF, and
        hands the whole batch to the strategy — sampling strategies then
        draw trials as vectorized blocks (and, for naive MC, evaluate
        all tuples against one shared block of worlds).  Returns a
        mapping from data tuple to its :class:`ConfidenceReport`::

            for row, report in sorted(db.confidence_all("T").items()):
                print(row, report.value, report.exact)
        """
        result = self.query(query)
        chosen = (
            self.strategy
            if strategy is None
            else resolve_strategy(
                strategy, eps=self._eps, delta=self._delta, backend=self.backend
            )
        )
        rows = result.rows
        dnfs = [Dnf.for_tuple(result.relation, row, self.db.w) for row in rows]
        reports = self._compute_confidence_batch(dnfs, chosen)
        return dict(zip(rows, reports))

    def relation_confidences(
        self, relation: URelation, rows: Sequence[tuple]
    ) -> list[ConfidenceReport]:
        """Batched confidences for the given data tuples of ``relation``.

        The batch primitive behind :meth:`EngineResult.confidences` —
        reports come back in ``rows`` order::

            db.relation_confidences(result.relation, result.rows)
        """
        dnfs = [Dnf.for_tuple(relation, row, self.db.w) for row in rows]
        return self._compute_confidence_batch(dnfs, self.strategy)

    def _confidence_relation(
        self,
        urel: URelation,
        p_name: str,
        evaluator: UEvaluator,
        strategy: ConfidenceStrategy | None = None,
    ) -> URelation:
        """Strategy-routed [[conf(R)]] (replaces the evaluator's exact-only path)."""
        chosen = self.strategy if strategy is None else strategy
        from repro.algebra import schema as _schema
        from repro.urel.conditions import TOP

        cols = urel.columns
        if p_name in cols:
            raise _schema.SchemaError(
                f"conf column {p_name!r} collides with schema {cols}"
            )
        rows = sorted(urel.possible_tuples().rows, key=repr)
        dnfs = [Dnf.for_tuple(urel, row, evaluator.db.w) for row in rows]
        reports = self._compute_confidence_batch(dnfs, chosen)
        out = {
            (TOP, tuple(row) + (report.value,))
            for row, report in zip(rows, reports)
        }
        return URelation(cols + (p_name,), frozenset(out))

    # ------------------------------------------------------------ introspection
    def relation(self, name: str) -> URelation:
        """The stored U-relation named ``name`` (raises on unknown names)."""
        return self.db.relation(name)

    @property
    def relation_names(self) -> frozenset[str]:
        """Names of every stored relation, base and assigned alike."""
        return self.db.relation_names

    @property
    def w(self):
        """The session's W table of random variables."""
        return self.db.w

    @property
    def rng(self) -> random.Random:
        """The session RNG — sole randomness source for sampled strategies."""
        return self._rng

    @property
    def cache_stats(self) -> dict[str, int]:
        """Memo-cache counters: entries, hits, misses, bytes, evictions."""
        return self._cache.stats.as_dict()

    def clear_cache(self) -> None:
        """Drop every memo-cache entry (confidence and query results)."""
        self._cache.clear()

    @property
    def closed(self) -> bool:
        """Whether :meth:`close` has run (the session still answers queries)."""
        return self._closed

    def close(self) -> None:
        """Release the session's worker pool (if any).

        One executor serves both layers — confidence/driver fan-outs and
        the sharded columnar algebra — so this tears down one pool, once.
        A *borrowed* executor (a ``ShardExecutor`` instance passed to
        ``connect``, possibly shared with other sessions) is left
        running: its creator owns the lifecycle — which is also what
        makes close *safe under concurrency*: a server can close one
        session while sibling sessions sharing the borrowed pool have
        requests in flight, and those requests keep their parallelism.
        The session stays usable either way — sharded workloads simply
        run their (identical) serial path after an owned pool is gone.

        Idempotent and thread-safe: any number of racing ``close`` calls
        (double-close, close-while-request-in-flight) tear the owned
        pool down exactly once and never raise.  Garbage collection also
        reclaims owned pools, so calling this is a courtesy, not a duty.
        """
        with self._close_lock:
            if self._closed:
                return
            self._closed = True
        if self.executor is not None and self._owns_executor:
            self.executor.close()

    async def aclose(self) -> None:
        """Async-friendly :meth:`close` for event-loop callers.

        A thin wrapper that runs the (potentially pool-joining) close in
        a worker thread so the event loop never blocks on process
        teardown; same idempotence and thread-safety guarantees.
        """
        import asyncio

        await asyncio.to_thread(self.close)

    def __enter__(self) -> "ProbDB":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def worlds(self, max_worlds: int = 1_000_000):
        """Unfold the session database into its possible worlds."""
        from repro.urel.enumerate import enumerate_worlds

        return enumerate_worlds(self.db, max_worlds=max_worlds)

    def __repr__(self) -> str:
        return (
            f"ProbDB({sorted(self.db.relation_names)}, strategy={self.strategy.name!r}, "
            f"{len(self.db.w)} vars)"
        )
