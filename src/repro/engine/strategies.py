"""Pluggable confidence strategies and the ``auto`` selection policy.

The paper mixes three ways of turning a disjunction F of partial
functions into a probability: the exact #P solvers behind ``conf``
(Theorem 3.4), the Karp–Luby FPRAS behind ``conf_{ε,δ}`` (Corollary
4.3), and the naive Monte-Carlo baseline it beats.  The engine exposes
each as a named :class:`ConfidenceStrategy` in a registry, so sessions
can switch backends without touching query code, and adds ``auto``: a
per-tuple policy that inspects the DNF — degenerate cases, read-once
structure (checked through :mod:`repro.core.readonce`), and size — and
routes each tuple to the cheapest method that is still sound.

Registry protocol::

    strategy = resolve_strategy("auto", eps=0.1, delta=0.01)
    report = strategy.compute(dnf, rng)     # -> ConfidenceReport
    method = strategy.choose(dnf)           # what compute() would run

Third parties register their own backends with :func:`register_strategy`.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.algebra.expressions import And, Attr, Cmp, Const, Or
from repro.confidence.dnf import Dnf
from repro.confidence.exact import (
    probability_by_decomposition,
    probability_by_enumeration,
)
from repro.confidence.karp_luby import approximate_confidence
from repro.confidence.naive_mc import naive_confidence, naive_sample_size_additive
from repro.core.readonce import is_read_once
from repro.worlds.database import Prob

__all__ = [
    "ConfidenceReport",
    "ConfidenceStrategy",
    "ExactDecomposition",
    "ExactEnumeration",
    "KarpLuby",
    "NaiveMonteCarlo",
    "AutoStrategy",
    "register_strategy",
    "resolve_strategy",
    "strategy_names",
    "dnf_is_read_once",
    "UnknownStrategyError",
]

DEFAULT_EPS = 0.1
DEFAULT_DELTA = 0.01


class UnknownStrategyError(ValueError):
    """Raised when a strategy name is not in the registry."""


@dataclass(frozen=True)
class ConfidenceReport:
    """One tuple-confidence computation, with its audit trail.

    ``strategy`` is the registry name the session asked for; ``method``
    is the concrete backend that actually ran (they differ under
    ``auto``).  ``exact`` marks values free of sampling error.
    """

    value: Prob
    strategy: str
    method: str
    exact: bool
    samples: int = 0
    eps: float | None = None
    delta: float | None = None

    def __float__(self) -> float:
        return float(self.value)


class ConfidenceStrategy:
    """Base class: a named way of computing the weight of a DNF."""

    name: str = "?"

    @property
    def cache_token(self) -> tuple:
        """Hashable identity of this strategy *configuration*.

        Cache keys include it so two instances that could answer the
        same DNF differently (other (ε, δ), other routing thresholds)
        never share an entry.
        """
        return (self.name,)

    def choose(self, dnf: Dnf) -> str:
        """Name of the concrete method :meth:`compute` would run on ``dnf``."""
        return self.name

    def compute(self, dnf: Dnf, rng: random.Random) -> ConfidenceReport:
        raise NotImplementedError

    def __repr__(self) -> str:
        return f"<strategy {self.name!r}>"


def dnf_is_read_once(dnf: Dnf) -> bool:
    """Is the disjunction read-once — no variable shared between clauses?

    A clause is a partial function, so within one clause each variable
    occurs once; the disjunction is read-once iff clauses are pairwise
    variable-disjoint.  On such instances the decomposition solver's
    independent-component factoring computes the probability in linear
    time (no Shannon branching), so exact evaluation is always cheap.
    The check reuses the paper's predicate notion from
    :mod:`repro.core.readonce` by lowering F to the Boolean formula
    ⋁_f ⋀_{X∈dom(f)} (X = f(X)) with one attribute per variable
    occurrence.
    """
    clauses = []
    for member in dnf.members:
        atoms = tuple(
            Cmp("=", Attr(repr(var)), Const(0)) for var in sorted(member.variables, key=repr)
        )
        if not atoms:
            continue
        clauses.append(atoms[0] if len(atoms) == 1 else And(atoms))
    if not clauses:
        return True
    formula = clauses[0] if len(clauses) == 1 else Or(tuple(clauses))
    return is_read_once(formula)


_REGISTRY: dict[str, type[ConfidenceStrategy]] = {}


def register_strategy(cls: type[ConfidenceStrategy]) -> type[ConfidenceStrategy]:
    """Register a strategy class under its ``name`` (decorator-friendly)."""
    if not getattr(cls, "name", None) or cls.name == "?":
        raise ValueError(f"strategy class {cls.__name__} needs a name")
    _REGISTRY[cls.name] = cls
    return cls


def strategy_names() -> tuple[str, ...]:
    """Registered strategy names, sorted."""
    return tuple(sorted(_REGISTRY))


def resolve_strategy(
    spec: str | ConfidenceStrategy,
    eps: float | None = None,
    delta: float | None = None,
) -> ConfidenceStrategy:
    """Turn a name (or an instance, passed through) into a strategy.

    ``eps``/``delta`` parameterize the approximate backends; exact ones
    ignore them.  Accepts the legacy ``conf_method`` names
    ``"decomposition"``/``"enumeration"`` for the shims' sake.
    """
    if isinstance(spec, ConfidenceStrategy):
        return spec
    name = {"decomposition": "exact-decomposition", "enumeration": "exact-enumeration"}.get(
        spec, spec
    )
    try:
        cls = _REGISTRY[name]
    except KeyError:
        raise UnknownStrategyError(
            f"unknown confidence strategy {spec!r}; registered: {strategy_names()}"
        ) from None
    return cls(eps=eps, delta=delta)


@register_strategy
class ExactDecomposition(ConfidenceStrategy):
    """Shannon expansion with independence factoring (Theorem 3.4 oracle)."""

    name = "exact-decomposition"

    def __init__(self, eps: float | None = None, delta: float | None = None):
        pass

    def compute(self, dnf: Dnf, rng: random.Random) -> ConfidenceReport:
        value = probability_by_decomposition(dnf)
        return ConfidenceReport(value, self.name, self.name, exact=True)


@register_strategy
class ExactEnumeration(ConfidenceStrategy):
    """Brute-force world enumeration — ground truth for small instances."""

    name = "exact-enumeration"

    def __init__(self, eps: float | None = None, delta: float | None = None):
        pass

    def compute(self, dnf: Dnf, rng: random.Random) -> ConfidenceReport:
        value = probability_by_enumeration(dnf)
        return ConfidenceReport(value, self.name, self.name, exact=True)


@register_strategy
class KarpLuby(ConfidenceStrategy):
    """The (ε, δ) FPRAS of Proposition 4.2 / Corollary 4.3."""

    name = "karp-luby"

    def __init__(self, eps: float | None = None, delta: float | None = None):
        self.eps = DEFAULT_EPS if eps is None else eps
        self.delta = DEFAULT_DELTA if delta is None else delta

    @property
    def cache_token(self) -> tuple:
        return (self.name, self.eps, self.delta)

    def compute(self, dnf: Dnf, rng: random.Random) -> ConfidenceReport:
        estimate = approximate_confidence(dnf, self.eps, self.delta, rng)
        return ConfidenceReport(
            estimate.estimate,
            self.name,
            self.name,
            exact=estimate.exact,
            samples=estimate.samples,
            eps=self.eps,
            delta=self.delta,
        )


@register_strategy
class NaiveMonteCarlo(ConfidenceStrategy):
    """World-sampling baseline with an additive Hoeffding guarantee only."""

    name = "naive-mc"

    def __init__(self, eps: float | None = None, delta: float | None = None):
        self.eps = DEFAULT_EPS if eps is None else eps
        self.delta = DEFAULT_DELTA if delta is None else delta

    @property
    def cache_token(self) -> tuple:
        return (self.name, self.eps, self.delta)

    def compute(self, dnf: Dnf, rng: random.Random) -> ConfidenceReport:
        samples = naive_sample_size_additive(self.eps, self.delta)
        estimate = naive_confidence(dnf, samples, rng)
        exact = dnf.is_empty or dnf.is_trivially_true
        return ConfidenceReport(
            estimate.estimate,
            self.name,
            self.name,
            exact=exact,
            samples=estimate.samples,
            eps=self.eps,
            delta=self.delta,
        )


@register_strategy
class AutoStrategy(ConfidenceStrategy):
    """Per-tuple routing to the cheapest sound backend.

    Decision rule, in order:

    1. degenerate F (empty, trivially true, single clause) — exact, free;
    2. read-once F (:func:`dnf_is_read_once`) — exact decomposition,
       which factors into independent components in linear time;
    3. small F (|F| ≤ ``max_exact_size`` and |vars(F)| ≤
       ``max_exact_variables``) — exact decomposition stays affordable;
    4. otherwise — the Karp–Luby FPRAS with this strategy's (ε, δ).

    Every routed computation still reports ``strategy="auto"`` and the
    concrete ``method`` chosen, so :meth:`ProbDB.explain` can show the
    decision.
    """

    name = "auto"

    def __init__(
        self,
        eps: float | None = None,
        delta: float | None = None,
        max_exact_size: int = 16,
        max_exact_variables: int = 24,
    ):
        self.eps = DEFAULT_EPS if eps is None else eps
        self.delta = DEFAULT_DELTA if delta is None else delta
        self.max_exact_size = max_exact_size
        self.max_exact_variables = max_exact_variables
        self._exact = ExactDecomposition()
        self._sampler = KarpLuby(self.eps, self.delta)

    @property
    def cache_token(self) -> tuple:
        return (
            self.name,
            self.eps,
            self.delta,
            self.max_exact_size,
            self.max_exact_variables,
        )

    def choose(self, dnf: Dnf) -> str:
        if dnf.is_empty or dnf.is_trivially_true or dnf.size == 1:
            return self._exact.name
        if dnf_is_read_once(dnf):
            return self._exact.name
        if dnf.size <= self.max_exact_size and len(dnf.variables) <= self.max_exact_variables:
            return self._exact.name
        return self._sampler.name

    def compute(self, dnf: Dnf, rng: random.Random) -> ConfidenceReport:
        method = self.choose(dnf)
        backend = self._exact if method == self._exact.name else self._sampler
        report = backend.compute(dnf, rng)
        return ConfidenceReport(
            report.value,
            self.name,
            method,
            exact=report.exact,
            samples=report.samples,
            eps=report.eps,
            delta=report.delta,
        )
