"""Pluggable confidence strategies and the ``auto`` selection policy.

The paper mixes three ways of turning a disjunction F of partial
functions into a probability: the exact #P solvers behind ``conf``
(Theorem 3.4), the Karp–Luby FPRAS behind ``conf_{ε,δ}`` (Corollary
4.3), and the naive Monte-Carlo baseline it beats.  The engine exposes
each as a named :class:`ConfidenceStrategy` in a registry, so sessions
can switch backends without touching query code, and adds ``auto``: a
per-tuple policy that inspects the DNF — degenerate cases, read-once
structure (checked through :mod:`repro.core.readonce`), and size — and
routes each tuple to the cheapest method that is still sound.

Registry protocol::

    strategy = resolve_strategy("auto", eps=0.1, delta=0.01, backend="numpy")
    report = strategy.compute(dnf, rng)     # -> ConfidenceReport
    reports = strategy.compute_batch(dnfs, rng)   # batched (shared samples)
    method = strategy.choose(dnf)           # what compute() would run

Sampling strategies additionally take a trial ``backend``
(``"numpy"``/``"python"``/``"auto"``, see :mod:`repro.confidence.batch`)
and override :meth:`ConfidenceStrategy.compute_batch` to draw trials in
vectorized blocks shared across a whole batch of tuples.  Third parties
register their own strategies with :func:`register_strategy`; strategy
classes are instantiated as ``cls(eps=..., delta=..., backend=...)``.

:meth:`ConfidenceStrategy.compute_batch` also accepts a
:class:`~repro.util.parallel.ShardExecutor`: the per-tuple DNF list is
then cut into contiguous shards by the executor's worker-count-
independent plan, each shard computed under a generator derived from its
*shard index*, and results concatenated in shard order — bit-identical
for every worker count.  Strategies registered against the original
two-argument contract keep working: the engine only passes the keyword
to ``compute_batch`` implementations that declare it (see
:func:`compute_batch_with_executor`).
"""

from __future__ import annotations

import inspect
import random
from dataclasses import dataclass

from collections.abc import Sequence

from repro.algebra.expressions import And, Attr, Cmp, Const, Or
from repro.confidence.batch import (
    batch_approximate_confidence,
    batch_naive_confidence,
    resolve_backend,
    shared_block_confidences,
)
from repro.confidence.dissociation import (
    DEFAULT_BOUND_BUDGET,
    dissociation_interval,
    dissociation_intervals,
)
from repro.confidence.dnf import Dnf
from repro.confidence.exact import (
    probability_by_decomposition,
    probability_by_enumeration,
)
from repro.confidence.naive_mc import naive_sample_size_additive
from repro.core.readonce import is_read_once
from repro.util.parallel import ShardExecutor, shard_seed
from repro.worlds.database import Prob

__all__ = [
    "ConfidenceReport",
    "ConfidenceStrategy",
    "DissociationBounds",
    "ExactDecomposition",
    "ExactEnumeration",
    "KarpLuby",
    "NaiveMonteCarlo",
    "AutoStrategy",
    "register_strategy",
    "resolve_strategy",
    "strategy_names",
    "dnf_is_read_once",
    "compute_batch_with_executor",
    "compute_with_executor",
    "UnknownStrategyError",
]

DEFAULT_EPS = 0.1
DEFAULT_DELTA = 0.01


class UnknownStrategyError(ValueError):
    """Raised when a strategy name is not in the registry."""


@dataclass(frozen=True)
class ConfidenceReport:
    """One tuple-confidence computation, with its audit trail.

    ``strategy`` is the registry name the session asked for; ``method``
    is the concrete backend that actually ran (they differ under
    ``auto``).  ``exact`` marks values free of sampling error.
    ``lower``/``upper`` carry a *guaranteed* enclosing interval when the
    method produced one (dissociation bounds); unlike (ε, δ) error bars
    they hold with certainty, and ``lower == upper`` implies ``exact``.
    """

    value: Prob
    strategy: str
    method: str
    exact: bool
    samples: int = 0
    eps: float | None = None
    delta: float | None = None
    lower: Prob | None = None
    upper: Prob | None = None

    def __float__(self) -> float:
        return float(self.value)


class ConfidenceStrategy:
    """Base class: a named way of computing the weight of a DNF."""

    name: str = "?"

    consumes_rng: bool = True
    """Whether :meth:`compute`/:meth:`compute_batch` may draw from the
    caller's generator.  Exact strategies set this ``False`` so a
    sharded all-exact batch does not spend one ``getrandbits(64)`` of
    session entropy on shard seeds its workers never use — which in turn
    lets the serving layer's global cache budget evict exact entries
    without shifting the session's sampled stream.  Third parties keep
    the conservative default."""

    @property
    def cache_token(self) -> tuple:
        """Hashable identity of this strategy *configuration*.

        Cache keys include it so two instances that could answer the
        same DNF differently (other (ε, δ), other routing thresholds)
        never share an entry.
        """
        return (self.name,)

    def choose(self, dnf: Dnf) -> str:
        """Name of the concrete method :meth:`compute` would run on ``dnf``."""
        return self.name

    def trial_budget(self, dnf: Dnf) -> int:
        """Monte-Carlo trials :meth:`compute` would spend on ``dnf`` (0 = exact).

        The cost-model hook behind ``explain``'s "when serial wins"
        annotation: a conf operator whose per-tuple DNF list is too
        short to shard can still fan out profitably when some tuple's
        trial budget alone fills worker-sized blocks
        (:meth:`~repro.util.parallel.ShardExecutor.plan_trials`).  Exact
        strategies spend none, so they report 0.
        """
        return 0

    def compute(self, dnf: Dnf, rng: random.Random) -> ConfidenceReport:
        raise NotImplementedError

    def compute_batch(
        self,
        dnfs: Sequence[Dnf],
        rng: random.Random,
        executor: "ShardExecutor | None" = None,
    ) -> list[ConfidenceReport]:
        """Confidences for a whole batch of disjunctions (one per tuple).

        The default runs :meth:`compute` per DNF; sampling strategies
        override this to amortize trial drawing across the batch (shared
        world blocks, vectorized per-tuple trial budgets).  With an
        ``executor`` the DNF list is sharded across workers (see
        :meth:`_sharded_compute`).
        """
        sharded = self._sharded_compute(dnfs, rng, executor)
        if sharded is not None:
            return sharded
        return [self.compute(dnf, rng) for dnf in dnfs]

    def _sharded_compute(
        self,
        dnfs: Sequence[Dnf],
        rng: random.Random,
        executor: "ShardExecutor | None",
    ) -> list[ConfidenceReport] | None:
        """Shard the DNF list across the executor, or ``None`` to stay serial.

        The shard plan and each shard's generator depend on the workload
        and the shard *index* only (never on the worker count), so the
        concatenated result is bit-identical at any parallelism.  The
        strategy itself travels to the workers, which is why strategy
        instances must stay picklable and must not hold executors.
        """
        if executor is None:
            return None
        shards = executor.plan_items(len(dnfs))
        if len(shards) <= 1:
            return None
        # A strategy that never samples needs no shard entropy; a fixed
        # base keeps the shard-seed derivation uniform without touching
        # the session stream (the workers ignore their generators).
        base = rng.getrandbits(64) if self.consumes_rng else 0
        results = executor.map(
            _strategy_shard_task,
            [
                (self, list(dnfs[start:stop]), shard_seed(base, i))
                for i, (start, stop) in enumerate(shards)
            ],
        )
        return [report for shard in results for report in shard]

    def __repr__(self) -> str:
        return f"<strategy {self.name!r}>"


def _strategy_shard_task(
    strategy: ConfidenceStrategy, dnfs: list[Dnf], seed: int
) -> list[ConfidenceReport]:
    """One shard of a sharded ``compute_batch`` (module level: pickles)."""
    rng = random.Random(seed)
    return [strategy.compute(dnf, rng) for dnf in dnfs]


_EXECUTOR_AWARE: dict[tuple[type, str], bool] = {}


def _accepts_executor(strategy: ConfidenceStrategy, method: str) -> bool:
    cls = type(strategy)
    aware = _EXECUTOR_AWARE.get((cls, method))
    if aware is None:
        parameters = inspect.signature(getattr(cls, method)).parameters
        aware = "executor" in parameters or any(
            p.kind is inspect.Parameter.VAR_KEYWORD for p in parameters.values()
        )
        _EXECUTOR_AWARE[(cls, method)] = aware
    return aware


def compute_batch_with_executor(
    strategy: ConfidenceStrategy,
    dnfs: Sequence[Dnf],
    rng: random.Random,
    executor: "ShardExecutor | None",
) -> list[ConfidenceReport]:
    """Call ``strategy.compute_batch``, passing ``executor`` only if accepted.

    Third-party strategies written against the original
    ``compute_batch(dnfs, rng)`` contract predate sharding; they run
    serially rather than erroring on an unexpected keyword.
    """
    if executor is not None and _accepts_executor(strategy, "compute_batch"):
        return strategy.compute_batch(dnfs, rng, executor=executor)
    return strategy.compute_batch(dnfs, rng)


def compute_with_executor(
    strategy: ConfidenceStrategy,
    dnf: Dnf,
    rng: random.Random,
    executor: "ShardExecutor | None",
) -> ConfidenceReport:
    """Single-tuple counterpart of :func:`compute_batch_with_executor`.

    Sampling strategies shard the one tuple's whole trial budget
    (there is no list to cut); strategies with the original
    ``compute(dnf, rng)`` signature run serially.
    """
    if executor is not None and _accepts_executor(strategy, "compute"):
        return strategy.compute(dnf, rng, executor=executor)
    return strategy.compute(dnf, rng)


def dnf_is_read_once(dnf: Dnf) -> bool:
    """Is the disjunction read-once — no variable shared between clauses?

    A clause is a partial function, so within one clause each variable
    occurs once; the disjunction is read-once iff clauses are pairwise
    variable-disjoint.  On such instances the decomposition solver's
    independent-component factoring computes the probability in linear
    time (no Shannon branching), so exact evaluation is always cheap.
    The check reuses the paper's predicate notion from
    :mod:`repro.core.readonce` by lowering F to the Boolean formula
    ⋁_f ⋀_{X∈dom(f)} (X = f(X)) with one attribute per variable
    occurrence.
    """
    clauses = []
    for member in dnf.members:
        atoms = tuple(
            Cmp("=", Attr(repr(var)), Const(0)) for var in sorted(member.variables, key=repr)
        )
        if not atoms:
            continue
        clauses.append(atoms[0] if len(atoms) == 1 else And(atoms))
    if not clauses:
        return True
    formula = clauses[0] if len(clauses) == 1 else Or(tuple(clauses))
    return is_read_once(formula)


_REGISTRY: dict[str, type[ConfidenceStrategy]] = {}


def register_strategy(cls: type[ConfidenceStrategy]) -> type[ConfidenceStrategy]:
    """Register a strategy class under its ``name`` (decorator-friendly)."""
    if not getattr(cls, "name", None) or cls.name == "?":
        raise ValueError(f"strategy class {cls.__name__} needs a name")
    _REGISTRY[cls.name] = cls
    return cls


def strategy_names() -> tuple[str, ...]:
    """Registered strategy names, sorted."""
    return tuple(sorted(_REGISTRY))


def resolve_strategy(
    spec: str | ConfidenceStrategy,
    eps: float | None = None,
    delta: float | None = None,
    backend: str | None = None,
) -> ConfidenceStrategy:
    """Turn a name (or an instance, passed through) into a strategy.

    ``eps``/``delta`` parameterize the approximate backends, ``backend``
    selects their trial engine (``"numpy"``/``"python"``/``"auto"``);
    exact strategies ignore all three.  Accepts the legacy
    ``conf_method`` names ``"decomposition"``/``"enumeration"``.
    """
    if isinstance(spec, ConfidenceStrategy):
        return spec
    name = {"decomposition": "exact-decomposition", "enumeration": "exact-enumeration"}.get(
        spec, spec
    )
    try:
        cls = _REGISTRY[name]
    except KeyError:
        raise UnknownStrategyError(
            f"unknown confidence strategy {spec!r}; registered: {strategy_names()}"
        ) from None
    # Third-party strategies registered against the original contract
    # (``cls(eps=..., delta=...)``) may not know about trial backends;
    # only pass the kwarg to classes that declare it.
    parameters = inspect.signature(cls.__init__).parameters
    if "backend" in parameters or any(
        p.kind is inspect.Parameter.VAR_KEYWORD for p in parameters.values()
    ):
        return cls(eps=eps, delta=delta, backend=backend)
    return cls(eps=eps, delta=delta)


@register_strategy
class ExactDecomposition(ConfidenceStrategy):
    """Shannon expansion with independence factoring (Theorem 3.4 oracle)."""

    name = "exact-decomposition"
    consumes_rng = False

    def __init__(
        self,
        eps: float | None = None,
        delta: float | None = None,
        backend: str | None = None,
    ):
        pass

    def compute(self, dnf: Dnf, rng: random.Random) -> ConfidenceReport:
        value = probability_by_decomposition(dnf)
        return ConfidenceReport(value, self.name, self.name, exact=True)


@register_strategy
class ExactEnumeration(ConfidenceStrategy):
    """Brute-force world enumeration — ground truth for small instances."""

    name = "exact-enumeration"
    consumes_rng = False

    def __init__(
        self,
        eps: float | None = None,
        delta: float | None = None,
        backend: str | None = None,
    ):
        pass

    def compute(self, dnf: Dnf, rng: random.Random) -> ConfidenceReport:
        value = probability_by_enumeration(dnf)
        return ConfidenceReport(value, self.name, self.name, exact=True)


@register_strategy
class KarpLuby(ConfidenceStrategy):
    """The (ε, δ) FPRAS of Proposition 4.2 / Corollary 4.3.

    ``backend`` selects the trial engine behind
    :func:`repro.confidence.batch.batch_approximate_confidence`, which
    draws the whole m = ⌈3·|F|·ln(2/δ)/ε²⌉ budget as one block:
    ``"numpy"`` vectorizes it, ``"python"`` is the dependency-free
    fallback, and ``None`` / ``"auto"`` picks numpy when importable.
    The statistical guarantee is identical either way.
    """

    name = "karp-luby"

    def __init__(
        self,
        eps: float | None = None,
        delta: float | None = None,
        backend: str | None = None,
    ):
        self.eps = DEFAULT_EPS if eps is None else eps
        self.delta = DEFAULT_DELTA if delta is None else delta
        self.backend = resolve_backend(backend)

    @property
    def cache_token(self) -> tuple:
        return (self.name, self.eps, self.delta, self.backend)

    def trial_budget(self, dnf: Dnf) -> int:
        from repro.confidence import bounds

        # Degenerate disjunctions (empty, trivially true, single clause)
        # are answered exactly by the sampler without drawing a trial.
        if dnf.is_empty or dnf.is_trivially_true or dnf.size == 1:
            return 0
        return bounds.karp_luby_sample_size(self.eps, self.delta, dnf.size)

    def compute(
        self,
        dnf: Dnf,
        rng: random.Random,
        executor: "ShardExecutor | None" = None,
    ) -> ConfidenceReport:
        estimate = batch_approximate_confidence(
            dnf, self.eps, self.delta, rng, backend=self.backend, executor=executor
        )
        return ConfidenceReport(
            estimate.estimate,
            self.name,
            self.name,
            exact=estimate.exact,
            samples=estimate.samples,
            eps=self.eps,
            delta=self.delta,
        )

    def compute_batch(
        self,
        dnfs: Sequence[Dnf],
        rng: random.Random,
        executor: "ShardExecutor | None" = None,
    ) -> list[ConfidenceReport]:
        """Sharded per-tuple budgets: many tuples shard the DNF list; a
        batch too small to cut shards instead splits each tuple's whole
        Prop 4.2 trial budget into per-worker blocks."""
        sharded = self._sharded_compute(dnfs, rng, executor)
        if sharded is not None:
            return sharded
        if executor is not None:
            return [self.compute(dnf, rng, executor=executor) for dnf in dnfs]
        return [self.compute(dnf, rng) for dnf in dnfs]


@register_strategy
class NaiveMonteCarlo(ConfidenceStrategy):
    """World-sampling baseline with an additive Hoeffding guarantee only.

    With ``backend="numpy"`` the sample worlds are drawn as one block;
    :meth:`compute_batch` goes further and draws ONE shared block for
    the whole batch of tuples, evaluating every tuple's DNF against the
    same worlds (the per-tuple additive Hoeffding bound holds marginally
    for each tuple; estimates across tuples become correlated).
    """

    name = "naive-mc"

    def __init__(
        self,
        eps: float | None = None,
        delta: float | None = None,
        backend: str | None = None,
    ):
        self.eps = DEFAULT_EPS if eps is None else eps
        self.delta = DEFAULT_DELTA if delta is None else delta
        self.backend = resolve_backend(backend)

    @property
    def cache_token(self) -> tuple:
        return (self.name, self.eps, self.delta, self.backend)

    def trial_budget(self, dnf: Dnf) -> int:
        if dnf.is_empty or dnf.is_trivially_true:
            return 0
        return naive_sample_size_additive(self.eps, self.delta)

    def _report(self, dnf: Dnf, estimate) -> ConfidenceReport:
        exact = dnf.is_empty or dnf.is_trivially_true
        return ConfidenceReport(
            estimate.estimate,
            self.name,
            self.name,
            exact=exact,
            samples=estimate.samples,
            eps=self.eps,
            delta=self.delta,
        )

    def compute(
        self,
        dnf: Dnf,
        rng: random.Random,
        executor: "ShardExecutor | None" = None,
    ) -> ConfidenceReport:
        samples = naive_sample_size_additive(self.eps, self.delta)
        estimate = batch_naive_confidence(
            dnf, samples, rng, backend=self.backend, executor=executor
        )
        return self._report(dnf, estimate)

    def compute_batch(
        self,
        dnfs: Sequence[Dnf],
        rng: random.Random,
        executor: "ShardExecutor | None" = None,
    ) -> list[ConfidenceReport]:
        """One shared world block per batch; with an executor, the block
        budget is split into per-worker sub-blocks (each still shared by
        every tuple) whose counts merge by trial-count weighting."""
        samples = naive_sample_size_additive(self.eps, self.delta)
        estimates = shared_block_confidences(
            dnfs, samples, rng, backend=self.backend, executor=executor
        )
        return [self._report(dnf, est) for dnf, est in zip(dnfs, estimates)]


@register_strategy
class DissociationBounds(ConfidenceStrategy):
    """Guaranteed PTIME confidence intervals via oblivious/dissociation bounds.

    Never samples: each DNF gets an enclosing ``[lower, upper]`` interval
    from :func:`repro.confidence.dissociation.dissociation_interval` —
    exact (point) on read-once and mutually-exclusive disjunctions, a
    budgeted Shannon expansion with Bonferroni/Hunter base-case bounds
    otherwise.  The reported ``value`` is the interval midpoint and
    ``exact`` is set iff the interval is a point; the interval itself
    rides along in ``lower``/``upper``.  All arithmetic is exact
    Fractions, so results are backend- and worker-count-independent.
    """

    name = "dissociation-bounds"
    consumes_rng = False

    def __init__(
        self,
        eps: float | None = None,
        delta: float | None = None,
        backend: str | None = None,
        budget: int = DEFAULT_BOUND_BUDGET,
    ):
        self.budget = budget

    @property
    def cache_token(self) -> tuple:
        return (self.name, self.budget)

    def _report(self, interval) -> ConfidenceReport:
        return ConfidenceReport(
            interval.midpoint,
            self.name,
            self.name,
            exact=interval.is_exact,
            lower=interval.lower,
            upper=interval.upper,
        )

    def compute(self, dnf: Dnf, rng: random.Random) -> ConfidenceReport:
        return self._report(dissociation_interval(dnf, self.budget))

    def compute_batch(
        self,
        dnfs: Sequence[Dnf],
        rng: random.Random,
        executor: "ShardExecutor | None" = None,
    ) -> list[ConfidenceReport]:
        """Batched bounds: the DNF list shards over the executor's
        worker-count-independent plan with no shard entropy at all."""
        intervals = dissociation_intervals(dnfs, self.budget, executor=executor)
        return [self._report(interval) for interval in intervals]


@register_strategy
class AutoStrategy(ConfidenceStrategy):
    """Per-tuple routing to the cheapest sound backend.

    Decision rule, in order:

    1. degenerate F (empty, trivially true, single clause) — exact, free;
    2. read-once F (:func:`dnf_is_read_once`) — exact decomposition,
       which factors into independent components in linear time;
    3. small F (|F| ≤ ``max_exact_size`` and |vars(F)| ≤
       ``max_exact_variables``) — exact decomposition stays affordable;
    4. F whose dissociation bound interval is a *point*
       (:func:`repro.confidence.dissociation.dissociation_interval` with
       this strategy's ``bounds_budget``) — e.g. mutually-exclusive
       clause sets of any size — the bound *is* the exact answer, no
       trial drawn;
    5. otherwise — the Karp–Luby FPRAS with this strategy's (ε, δ).

    Step 4 only fires on exact intervals: certifying against a threshold
    with a *loose* interval is the driver's job (it knows the
    predicate), not the strategy's.  Every routed computation still
    reports ``strategy="auto"`` and the concrete ``method`` chosen, so
    :meth:`ProbDB.explain` can show the decision.
    """

    name = "auto"

    def __init__(
        self,
        eps: float | None = None,
        delta: float | None = None,
        backend: str | None = None,
        max_exact_size: int = 16,
        max_exact_variables: int = 24,
        bounds_budget: int = DEFAULT_BOUND_BUDGET,
    ):
        self.eps = DEFAULT_EPS if eps is None else eps
        self.delta = DEFAULT_DELTA if delta is None else delta
        self.backend = resolve_backend(backend)
        self.max_exact_size = max_exact_size
        self.max_exact_variables = max_exact_variables
        self.bounds_budget = bounds_budget
        self._exact = ExactDecomposition()
        self._bounds = DissociationBounds(budget=bounds_budget)
        self._sampler = KarpLuby(self.eps, self.delta, backend=self.backend)

    @property
    def cache_token(self) -> tuple:
        return (
            self.name,
            self.eps,
            self.delta,
            self.backend,
            self.max_exact_size,
            self.max_exact_variables,
            self.bounds_budget,
        )

    def choose(self, dnf: Dnf) -> str:
        if dnf.is_empty or dnf.is_trivially_true or dnf.size == 1:
            return self._exact.name
        if dnf_is_read_once(dnf):
            return self._exact.name
        if dnf.size <= self.max_exact_size and len(dnf.variables) <= self.max_exact_variables:
            return self._exact.name
        if dissociation_interval(dnf, self.bounds_budget).is_exact:
            return self._bounds.name
        return self._sampler.name

    def trial_budget(self, dnf: Dnf) -> int:
        if self.choose(dnf) != self._sampler.name:
            return 0
        return self._sampler.trial_budget(dnf)

    def _rebrand(self, report: ConfidenceReport, method: str) -> ConfidenceReport:
        return ConfidenceReport(
            report.value,
            self.name,
            method,
            exact=report.exact,
            samples=report.samples,
            eps=report.eps,
            delta=report.delta,
            lower=report.lower,
            upper=report.upper,
        )

    def compute(
        self,
        dnf: Dnf,
        rng: random.Random,
        executor: "ShardExecutor | None" = None,
    ) -> ConfidenceReport:
        method = self.choose(dnf)
        if method == self._exact.name:
            return self._rebrand(self._exact.compute(dnf, rng), method)
        if method == self._bounds.name:
            return self._rebrand(self._bounds.compute(dnf, rng), method)
        return self._rebrand(
            self._sampler.compute(dnf, rng, executor=executor), method
        )

    def compute_batch(
        self,
        dnfs: Sequence[Dnf],
        rng: random.Random,
        executor: "ShardExecutor | None" = None,
    ) -> list[ConfidenceReport]:
        """Route the batch per tuple, then run each backend's batched path.

        All exact-routed tuples go through the exact strategy's (list-
        sharding) batch, all sampler-routed tuples through the sampler's
        :meth:`compute_batch`, so trial drawing is amortized and both
        sub-batches fan out over the executor.  Routing itself is
        deterministic (:meth:`choose` never samples), so the split — and
        with it every shard plan downstream — is worker-count invariant.
        """
        methods = [self.choose(dnf) for dnf in dnfs]
        reports: list[ConfidenceReport | None] = [None] * len(dnfs)
        exact = [i for i, m in enumerate(methods) if m == self._exact.name]
        bounded = [i for i, m in enumerate(methods) if m == self._bounds.name]
        sampled = [i for i, m in enumerate(methods) if m == self._sampler.name]
        if exact:
            batch = self._exact.compute_batch(
                [dnfs[i] for i in exact], rng, executor=executor
            )
            for i, report in zip(exact, batch):
                reports[i] = self._rebrand(report, self._exact.name)
        if bounded:
            batch = self._bounds.compute_batch(
                [dnfs[i] for i in bounded], rng, executor=executor
            )
            for i, report in zip(bounded, batch):
                reports[i] = self._rebrand(report, self._bounds.name)
        if sampled:
            batch = self._sampler.compute_batch(
                [dnfs[i] for i in sampled], rng, executor=executor
            )
            for i, report in zip(sampled, batch):
                reports[i] = self._rebrand(report, self._sampler.name)
        return reports
