"""The Karp–Luby Monte Carlo estimator and FPRAS for tuple confidence.

Section 4 of the paper, after Karp & Luby (FOCS 1983).  Given a
disjunction F of partial functions with member weights p_f and
M = Σ p_f, one trial of the estimator (Definition 4.1):

1. choose f ∈ F with probability p_f / M,
2. extend f to a total assignment f* by sampling every other variable
   from W,
3. output 1 iff f is the *smallest-index* member of F consistent
   with f*.

The trial mean is an unbiased estimator of p/M, so p̂ = X·M/m.  Since
p/M ≥ 1/|F|, the Chernoff bound gives δ(ε) ≤ 2·e^{−m·ε²/(3|F|)} and
m = ⌈3·|F|·ln(2/δ)/ε²⌉ trials suffice for an (ε, δ) guarantee — a fully
polynomial-time randomized approximation scheme (Proposition 4.2).

:class:`KarpLubySampler` supports *incremental* use (draw more trials
later and re-read the estimate); the Figure 3 predicate-approximation
algorithm depends on exactly that.
"""

from __future__ import annotations

import random
from bisect import bisect_right
from dataclasses import dataclass
from itertools import accumulate

from repro.confidence import bounds
from repro.confidence.dnf import Dnf
from repro.util.rng import ensure_rng

__all__ = ["KarpLubySampler", "KarpLubyEstimate", "approximate_confidence"]


@dataclass(frozen=True)
class KarpLubyEstimate:
    """Result of a Karp–Luby run.

    ``estimate`` is p̂ = X·M/m; ``eps``/``delta`` echo the requested
    guarantee when the run came from :func:`approximate_confidence`
    (``None`` for manual runs); ``exact`` marks degenerate disjunctions
    (empty, trivially true, or single-member) where p̂ is exactly p.
    """

    estimate: float
    samples: int
    positives: int
    total_weight: float
    size: int
    eps: float | None = None
    delta: float | None = None
    exact: bool = False

    def error_bound(self, eps: float) -> float:
        """δ(ε) for this run's sample count (0 when the value is exact)."""
        if self.exact:
            return 0.0
        return bounds.karp_luby_error_bound(eps, self.samples, self.size)


class KarpLubySampler:
    """Incremental Karp–Luby estimation for one disjunction.

    Degenerate disjunctions are handled exactly:

    * empty F                     → p = 0,
    * F containing the empty condition → p = 1,
    * |F| = 1                     → p = p_f  (the estimator would always
      return 1, so p̂ = M = p_f deterministically).
    """

    def __init__(self, dnf: Dnf, rng: random.Random | int | None = None):
        """Prepare estimation state for ``dnf``; ``rng`` seeds the draws."""
        self.dnf = dnf
        self.rng = ensure_rng(rng)
        self.trials = 0
        self.positives = 0
        self._weights_float = [float(p) for p in dnf.weights]
        self._cumulative = list(accumulate(self._weights_float))
        self._total = self._cumulative[-1] if self._cumulative else 0.0
        self._variables = sorted(dnf.variables, key=repr)
        if self.dnf.is_trivially_true:
            self._exact_value: float | None = 1.0
        elif self.dnf.is_empty:
            self._exact_value = 0.0
        elif self.dnf.size == 1:
            self._exact_value = self._total
        else:
            self._exact_value = None

    # ------------------------------------------------------------- trials
    @property
    def is_exact(self) -> bool:
        """True when the confidence is known exactly without sampling."""
        return self._exact_value is not None

    def draw(self) -> int:
        """One trial of the Definition 4.1 estimator (0 or 1)."""
        dnf, rng = self.dnf, self.rng
        # Step 1: pick a member with probability p_f / M.
        u = rng.random() * self._total
        index = bisect_right(self._cumulative, u)
        if index >= dnf.size:
            index = dnf.size - 1
        member = dnf.members[index]
        # Step 2: extend to a total assignment on the variables of F.
        world = dnf.w.sample_extension(member, self._variables, rng)
        # Step 3: 1 iff `member` is the smallest-index consistent member.
        first = dnf.first_consistent_index(world)
        outcome = 1 if first == index else 0
        self.trials += 1
        self.positives += outcome
        return outcome

    def run(self, n_trials: int) -> None:
        """Accumulate ``n_trials`` further trials."""
        for _ in range(n_trials):
            self.draw()

    # ------------------------------------------------------------- readout
    @property
    def estimate(self) -> float:
        """p̂ = X·M/m (or the exact value for degenerate disjunctions)."""
        if self._exact_value is not None:
            return self._exact_value
        if self.trials == 0:
            raise RuntimeError("no trials drawn yet")
        return self.positives * self._total / self.trials

    def error_bound(self, eps: float) -> float:
        """δ(ε) = 2·e^{−m·ε²/(3|F|)} for the trials drawn so far."""
        if self._exact_value is not None:
            return 0.0
        return bounds.karp_luby_error_bound(eps, self.trials, self.dnf.size)

    def snapshot(self, eps: float | None = None, delta: float | None = None) -> KarpLubyEstimate:
        """Freeze the current state into a :class:`KarpLubyEstimate`."""
        return KarpLubyEstimate(
            estimate=self.estimate,
            samples=self.trials,
            positives=self.positives,
            total_weight=self._total,
            size=self.dnf.size,
            eps=eps,
            delta=delta,
            exact=self._exact_value is not None,
        )


def approximate_confidence(
    dnf: Dnf,
    eps: float,
    delta: float,
    rng: random.Random | int | None = None,
) -> KarpLubyEstimate:
    """The (ε, δ) FPRAS of Proposition 4.2.

    Runs m = ⌈3·|F|·ln(2/δ)/ε²⌉ Karp–Luby trials and returns p̂ with
    Pr[|p̂ − p| ≥ ε·p] ≤ δ.
    """
    sampler = KarpLubySampler(dnf, rng)
    if sampler.is_exact:
        return sampler.snapshot(eps, delta)
    m = bounds.karp_luby_sample_size(eps, delta, dnf.size)
    sampler.run(m)
    return sampler.snapshot(eps, delta)
