"""Disjunctions of partial functions — the objects confidence is computed on.

"The confidence of tuple t for relation R represented in a U-relational
database is the weight of F = {f | ⟨f, t⟩ ∈ U_R}" (Section 4): the
probability that at least one of the partial functions in F is satisfied
by the random world.  This module packages F together with the W table,
precomputing the quantities the Karp–Luby estimator needs (the member
weights p_f, their sum M, and the fixed member order).
"""

from __future__ import annotations

from collections.abc import Iterable, Mapping, Sequence
from fractions import Fraction

from repro.urel.conditions import Condition, Var
from repro.urel.variables import VariableTable
from repro.worlds.database import Prob

__all__ = ["Dnf"]


class Dnf:
    """A disjunction F of partial functions over a variable table W.

    Members keep a fixed order (the estimator's tie-breaking uses "the one
    of the smallest index", Definition 4.1 step 3).  Duplicate members are
    removed, preserving first occurrence.
    """

    __slots__ = ("w", "members", "weights", "_variables", "_bounds")

    def __init__(self, conditions: Iterable[Condition], w: VariableTable):
        """Build the disjunction from ``conditions`` over W table ``w``."""
        self.w = w
        # Lazy per-budget memo for repro.confidence.dissociation — the
        # bound interval is a pure function of (members, W), so repeated
        # routing/pruning questions about one disjunction are free.
        self._bounds = None
        seen: set[Condition] = set()
        members: list[Condition] = []
        for cond in conditions:
            if cond not in seen:
                seen.add(cond)
                members.append(cond)
        self.members: tuple[Condition, ...] = tuple(members)
        self.weights: tuple[Prob, ...] = tuple(w.weight(f) for f in self.members)
        variables: set[Var] = set()
        for f in self.members:
            variables |= f.variables
        self._variables = frozenset(variables)

    # ------------------------------------------------------------- metrics
    def __len__(self) -> int:
        """The member count |F| (same as :attr:`size`)."""
        return len(self.members)

    @property
    def size(self) -> int:
        """|F| — drives the Karp–Luby sample-size bound (Section 4)."""
        return len(self.members)

    @property
    def variables(self) -> frozenset[Var]:
        """The variables mentioned by any member condition."""
        return self._variables

    @property
    def total_weight(self) -> Prob:
        """M = Σ_{f ∈ F} p_f (Section 4)."""
        total: Prob = Fraction(0)
        for p in self.weights:
            total = total + p
        return total

    @property
    def is_empty(self) -> bool:
        """An empty disjunction is false everywhere: probability 0."""
        return not self.members

    @property
    def is_trivially_true(self) -> bool:
        """Whether F contains the empty condition (every world satisfies it)."""
        return any(f.is_empty for f in self.members)

    # ------------------------------------------------------------- semantics
    def evaluate(self, world: Mapping[Var, object]) -> bool:
        """Is the disjunction satisfied by total assignment ``world``?"""
        return any(f.evaluate(world) for f in self.members)

    def first_consistent_index(self, world: Mapping[Var, object]) -> int | None:
        """Index of the smallest-index member consistent with ``world``."""
        for i, f in enumerate(self.members):
            if f.evaluate(world):
                return i
        return None

    def __repr__(self) -> str:
        """Summary form; members are intentionally elided (can be huge)."""
        return f"Dnf({len(self.members)} members over {len(self._variables)} vars)"

    @staticmethod
    def for_tuple(urelation, row: Sequence, w: VariableTable) -> "Dnf":
        """The disjunction F for data tuple ``row`` of a U-relation."""
        return Dnf(urelation.conditions_of(row), w)
