"""Oblivious (dissociation-style) upper *and* lower bounds on DNF confidence.

Exact confidence is #P-complete (Theorem 3.4), but a *guaranteed
interval* around it is cheap: Gatterbauer & Suciu's approximate lifted
inference computes upper and lower bounds for #P-hard DNFs as pure
relational plans.  This module is that idea adapted to the engine's
disjunctions of partial functions over multi-valued variables:
:func:`dissociation_interval` returns a :class:`BoundInterval` with

    interval.lower  ≤  P(F)  ≤  interval.upper

always — the bounds are *oblivious* (never wrong, sometimes loose).
Read-once disjunctions (and anything else the budgeted solver can
finish) come back as exact point intervals; hard instances come back
with the interval the budget could afford.

The solver mirrors the exact decomposition solver's structure with a
node budget bolted on:

1. **Independent-component factoring** (free — no budget spent):
   clauses over disjoint variable sets are independent, and
   ``1 − ∏(1 − x_c)`` is monotone in each component probability, so the
   component intervals combine by interval arithmetic without loss.
   Read-once DNFs decompose into single-clause components and are
   therefore always exact here, in linear time.
2. **Budgeted Shannon expansion** (one budget unit per expansion): the
   branch combination ``Σ_v P(X=v)·P_v`` is monotone too, so branch
   intervals sum exactly.  While budget remains, the bound solver *is*
   the exact solver.
3. **Base-case component bounds** at budget exhaustion, from the clause
   weights ``p_i`` and the pairwise intersection weights
   ``q_ij = weight(c_i ∪ c_j)`` (0 for inconsistent pairs — their world
   sets are disjoint):

   * lower: ``max(max_i p_i, Σp_i − Σ_{i<j} q_ij)`` — the degree-2
     Bonferroni (Kounias) inequality, always valid;
   * upper: ``Σp_i`` (union bound) improved to Hunter's bound
     ``Σp_i − Σ_{(i,j)∈T} q_ij`` over a maximum-weight spanning tree
     ``T``, always valid; and, **only** when every clause pair is
     consistent (each shared variable is demanded one single value, so
     the clauses are monotone conjunctions over independent Boolean
     indicators), the FKG/dissociation product bound
     ``1 − ∏(1 − p_i)``.

   The product bound is *invalid* in general: with X uniform on {1, 2}
   the clauses ``X=1`` and ``X=2`` have ``1 − ∏(1−p_i) = 3/4`` but
   probability 1.  Conversely, mutually-exclusive clause sets (all
   ``q_ij = 0`` — repair-key alternatives) make Bonferroni and Hunter
   coincide at ``Σp_i``: an exact answer without a single expansion.

Everything is computed in exact :class:`~fractions.Fraction` arithmetic,
so an interval is a pure function of the clause set — identical across
trial backends, worker counts, and hash seeds, which is what lets the
``auto`` policy route on it without breaking the engine's differential
determinism contracts.  The pairwise consistency screen is vectorized
with numpy when importable (the same integer-coding idea as
:mod:`repro.confidence.batch`); the screened result is integer-exact, so
both code paths produce identical intervals.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass
from fractions import Fraction

from repro.confidence.dnf import Dnf
from repro.confidence.exact import (
    _SATISFIED,
    _Decomposition,
    _branching_variable,
    _connected_components,
)
from repro.urel.conditions import Condition
from repro.urel.variables import VariableTable
from repro.worlds.database import Prob

try:  # pragma: no cover - exercised via whichever path the host has
    import numpy as _np
except ImportError:  # pragma: no cover
    _np = None

__all__ = [
    "BoundInterval",
    "dissociation_interval",
    "dissociation_intervals",
    "DEFAULT_BOUND_BUDGET",
    "PAIR_CAP",
]

DEFAULT_BOUND_BUDGET = 64
"""Default Shannon-expansion budget: small enough that hard DNFs (dense
bipartite 2DNFs and friends) fail fast into the pairwise bounds and stay
routed to sampling, large enough to finish every practically-structured
instance the exact router would accept."""

PAIR_CAP = 48
"""Components larger than this skip the O(k²) pairwise bounds and fall
back to ``max p_i`` / union-bound — keeping the worst-case base cost
linear in the clause count."""


@dataclass(frozen=True)
class BoundInterval:
    """A guaranteed enclosure ``lower ≤ P(F) ≤ upper`` of a confidence.

    Bounds are exact rationals; ``is_exact`` intervals pin the
    probability to a point (the solver finished, or the structure —
    read-once, mutually exclusive — made the bounds meet).
    """

    lower: Prob
    upper: Prob

    @property
    def is_exact(self) -> bool:
        """True when the interval is a single point — P(F) is known."""
        return self.lower == self.upper

    @property
    def midpoint(self) -> Prob:
        """The interval's center — the natural point summary of the bound."""
        return (self.lower + self.upper) / 2

    @property
    def width(self) -> Prob:
        """Interval width ``upper - lower`` (0 means the bound is exact)."""
        return self.upper - self.lower

    def __contains__(self, p) -> bool:
        """Whether probability ``p`` lies inside the interval."""
        return self.lower <= p <= self.upper


def dissociation_interval(dnf: Dnf, budget: int = DEFAULT_BOUND_BUDGET) -> BoundInterval:
    """Guaranteed confidence bounds for ``dnf``, memoized on the object.

    ``budget`` caps the Shannon expansions spent before the solver falls
    back to the pairwise Bonferroni/Hunter/FKG bounds; component
    factoring and single-clause components are free, so read-once
    disjunctions are exact at any budget (including 0).
    """
    cache = dnf._bounds
    if cache is None:
        cache = dnf._bounds = {}
    interval = cache.get(budget)
    if interval is None:
        interval = _compute_interval(dnf, budget)
        cache[budget] = interval
    return interval


def _compute_interval(dnf: Dnf, budget: int) -> BoundInterval:
    if dnf.is_empty:
        return BoundInterval(Fraction(0), Fraction(0))
    if dnf.is_trivially_true:
        return BoundInterval(Fraction(1), Fraction(1))
    lower, upper = _BoundSolver(dnf.w, budget).solve(frozenset(dnf.members))
    return BoundInterval(lower, upper)


def dissociation_intervals(
    dnfs: Sequence[Dnf],
    budget: int = DEFAULT_BOUND_BUDGET,
    executor=None,
) -> list[BoundInterval]:
    """Compute bounds for a batch of disjunctions, sharded when profitable.

    Bounds draw no randomness, so the executor path needs no shard
    seeds: the DNF list is cut by the worker-count-independent
    :meth:`~repro.util.parallel.ShardExecutor.plan_items` schedule and
    results concatenate in shard order — bit-identical at every worker
    count, exactly like the exact strategies' sharded batches.
    """
    if executor is not None:
        shards = executor.plan_items(len(dnfs))
        if len(shards) > 1:
            results = executor.map(
                _interval_shard_task,
                [(list(dnfs[start:stop]), budget) for start, stop in shards],
            )
            return [interval for shard in results for interval in shard]
    return [dissociation_interval(dnf, budget) for dnf in dnfs]


def _interval_shard_task(dnfs: list[Dnf], budget: int) -> list[BoundInterval]:
    """One shard of a sharded bounds batch (module level: pickles)."""
    return [dissociation_interval(dnf, budget) for dnf in dnfs]


class _BoundSolver:
    """Budget-limited interval analogue of the exact decomposition solver.

    Traversal order is made deterministic (components and clauses sorted
    by repr) because the budget drains as the solver walks: a
    hash-seed-dependent order could exhaust it on different subproblems
    and return different — still valid, but different — intervals.
    """

    __slots__ = ("w", "budget", "_memo")

    def __init__(self, w: VariableTable, budget: int):
        """Bind the W table and the node budget the traversal may spend."""
        self.w = w
        self.budget = budget
        self._memo: dict[frozenset[Condition], tuple[Prob, Prob]] = {}

    def solve(self, clauses: frozenset[Condition]) -> tuple[Prob, Prob]:
        """Return (lower, upper) confidence bounds for ``clauses``."""
        if not clauses:
            return Fraction(0), Fraction(0)
        if any(c.is_empty for c in clauses):
            return Fraction(1), Fraction(1)
        cached = self._memo.get(clauses)
        if cached is not None:
            return cached

        components = _connected_components(clauses)
        if len(components) > 1:
            # Disjoint variable sets: 1 − ∏(1 − x) is monotone in every
            # component probability, so the interval product is tight.
            components.sort(key=lambda comp: min(repr(c) for c in comp))
            miss_lower: Prob = Fraction(1)  # ∏(1 − upper_c)
            miss_upper: Prob = Fraction(1)  # ∏(1 − lower_c)
            for component in components:
                lower_c, upper_c = self.solve(component)
                miss_lower = miss_lower * (1 - upper_c)
                miss_upper = miss_upper * (1 - lower_c)
            result = (1 - miss_upper, 1 - miss_lower)
        elif len(clauses) == 1:
            (clause,) = clauses
            p = self.w.weight(clause)
            result = (p, p)
        elif self.budget > 0:
            self.budget -= 1
            var = _branching_variable(clauses)
            lower: Prob = Fraction(0)
            upper: Prob = Fraction(0)
            for value in self.w.domain(var):
                reduced = _Decomposition._condition_on(clauses, var, value)
                if reduced is _SATISFIED:
                    branch = (Fraction(1), Fraction(1))
                else:
                    branch = self.solve(reduced)
                p = self.w.prob(var, value)
                lower = lower + p * branch[0]
                upper = upper + p * branch[1]
            result = (lower, upper)
        else:
            result = self._component_bounds(clauses)

        self._memo[clauses] = result
        return result

    # -------------------------------------------------- base-case bounds
    def _component_bounds(self, clauses: frozenset[Condition]) -> tuple[Prob, Prob]:
        """Pairwise bounds for one connected component, budget exhausted."""
        members = sorted(clauses, key=repr)
        weights = [self.w.weight(c) for c in members]
        k = len(members)
        total: Prob = Fraction(0)
        for p in weights:
            total = total + p
        best = max(weights)
        if k > PAIR_CAP:
            return best, min(Fraction(1), total)

        consistent = _consistent_pairs(members)
        pair_weight: dict[tuple[int, int], Prob] = {}
        s2: Prob = Fraction(0)
        for i, j in consistent:
            union = members[i].union(members[j])
            # Consistency was established by the screen, so the union
            # exists; its weight is P(A_i ∩ A_j) exactly.
            q = self.w.weight(union)
            pair_weight[(i, j)] = q
            s2 = s2 + q

        lower = max(best, total - s2, Fraction(0))
        # Hunter's bound: Σp_i − Σ_{(i,j)∈T} q_ij for any tree T on the
        # clauses; maximizing the tree weight minimizes the bound.
        upper = min(Fraction(1), total - _max_spanning_tree_weight(k, pair_weight))
        if len(consistent) == k * (k - 1) // 2:
            # Every pair consistent ⇒ each variable is demanded one
            # single value across the component ⇒ the clauses are
            # monotone conjunctions of independent Boolean indicators,
            # and FKG gives the dissociation product bound.
            miss: Prob = Fraction(1)
            for p in weights:
                miss = miss * (1 - p)
            upper = min(upper, 1 - miss)
        return lower, upper


def _consistent_pairs(members: list[Condition]) -> list[tuple[int, int]]:
    """Indices (i < j) of clause pairs whose partial functions agree.

    The numpy screen integer-codes the clauses against the variables
    they mention (sentinel −1 for "not in this clause"), then tests all
    pairs with one boolean-array program — the
    :mod:`repro.confidence.batch` coding idea.  Integer comparisons are
    exact, so both paths return identical pair sets.
    """
    k = len(members)
    if _np is not None and k >= 8:
        variables = sorted({v for c in members for v in c.variables}, key=repr)
        column = {var: i for i, var in enumerate(variables)}
        codes: dict[int, dict[object, int]] = {i: {} for i in range(len(variables))}
        matrix = _np.full((k, len(variables)), -1, dtype=_np.int64)
        for row, clause in enumerate(members):
            for var, value in clause.items():
                col = column[var]
                table = codes[col]
                code = table.setdefault(value, len(table))
                matrix[row, col] = code
        a = matrix[:, None, :]
        b = matrix[None, :, :]
        conflict = ((a >= 0) & (b >= 0) & (a != b)).any(axis=2)
        i_idx, j_idx = _np.nonzero(~conflict)
        return [(int(i), int(j)) for i, j in zip(i_idx, j_idx) if i < j]
    return [
        (i, j)
        for i in range(k)
        for j in range(i + 1, k)
        if members[i].consistent_with(members[j])
    ]


def _max_spanning_tree_weight(k: int, pair_weight: dict[tuple[int, int], Prob]) -> Prob:
    """Weight of a maximum spanning tree on k clauses (Prim, O(k²)).

    Missing pairs weigh 0 (inconsistent clauses intersect nowhere), so
    the graph is always complete and the tree always spans; the maximum
    *weight* is unique even when the maximizing tree is not.
    """
    if k <= 1:
        return Fraction(0)

    def edge(i: int, j: int) -> Prob:
        return pair_weight.get((i, j) if i < j else (j, i), Fraction(0))

    in_tree = [False] * k
    in_tree[0] = True
    best = [edge(0, i) for i in range(k)]
    total: Prob = Fraction(0)
    for _ in range(k - 1):
        pick = -1
        for i in range(k):
            if not in_tree[i] and (pick < 0 or best[i] > best[pick]):
                pick = i
        in_tree[pick] = True
        total = total + best[pick]
        for i in range(k):
            if not in_tree[i]:
                w = edge(pick, i)
                if w > best[i]:
                    best[i] = w
    return total
