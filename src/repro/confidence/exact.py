"""Exact probability of a disjunction of partial functions.

Exact confidence computation is #P-complete on U-relational databases
(Theorem 3.4, after [10, 7]); these solvers are the "#P-oracle"
subprocedure that the complexity results presuppose.

Two implementations:

``probability_by_enumeration``
    The literal definition: sum the weights of all total assignments to
    the variables of F that satisfy F.  Exponential in the number of
    variables; used as ground truth in tests.

``probability_by_decomposition``
    A variable-elimination solver: Shannon expansion on a branching
    variable, with two standard optimizations — independent-component
    factoring (clauses on disjoint variables are independent, so the
    disjunction's failure probability factors) and memoization.  Still
    exponential in the worst case (it must be, unless #P collapses) but
    fast on practically-structured inputs; this is the ablation subject
    of experiment E17.

Both preserve exact rational arithmetic when the W table holds Fractions.
"""

from __future__ import annotations

from fractions import Fraction
from itertools import product as iter_product

from repro.confidence.dnf import Dnf
from repro.urel.conditions import Condition, Var
from repro.urel.variables import VariableTable
from repro.worlds.database import Prob

__all__ = [
    "probability_by_enumeration",
    "probability_by_decomposition",
    "exact_probability",
    "EnumerationLimitError",
]


class EnumerationLimitError(RuntimeError):
    """Raised when enumeration would visit too many assignments."""


def probability_by_enumeration(dnf: Dnf, max_assignments: int = 2_000_000) -> Prob:
    """Sum of world weights satisfying F, by brute-force enumeration."""
    if dnf.is_empty:
        return Fraction(0)
    if dnf.is_trivially_true:
        return Fraction(1)
    variables = sorted(dnf.variables, key=repr)
    n_assignments = 1
    for var in variables:
        n_assignments *= len(dnf.w.domain(var))
        if n_assignments > max_assignments:
            raise EnumerationLimitError(
                f"enumeration over {n_assignments}+ assignments exceeds the "
                f"limit {max_assignments}; use probability_by_decomposition"
            )
    total: Prob = Fraction(0)
    domains = [dnf.w.domain(var) for var in variables]
    for values in iter_product(*domains):
        world = dict(zip(variables, values))
        if dnf.evaluate(world):
            weight: Prob = Fraction(1)
            for var, value in world.items():
                weight = weight * dnf.w.prob(var, value)
            total = total + weight
    return total


def probability_by_decomposition(dnf: Dnf) -> Prob:
    """Exact probability via Shannon expansion with independence factoring."""
    if dnf.is_empty:
        return Fraction(0)
    if dnf.is_trivially_true:
        return Fraction(1)
    solver = _Decomposition(dnf.w)
    return solver.solve(frozenset(dnf.members))


def exact_probability(dnf: Dnf, method: str = "decomposition") -> Prob:
    """Dispatch between the two exact solvers."""
    if method == "decomposition":
        return probability_by_decomposition(dnf)
    if method == "enumeration":
        return probability_by_enumeration(dnf)
    raise ValueError(f"unknown exact method {method!r}")


class _Decomposition:
    """Memoized Shannon-expansion solver over clause sets."""

    __slots__ = ("w", "_memo")

    def __init__(self, w: VariableTable):
        """Bind the W table; the memo starts empty."""
        self.w = w
        self._memo: dict[frozenset[Condition], Prob] = {}

    def solve(self, clauses: frozenset[Condition]) -> Prob:
        """The exact probability that some clause in ``clauses`` holds."""
        if not clauses:
            return Fraction(0)
        if any(c.is_empty for c in clauses):
            return Fraction(1)
        cached = self._memo.get(clauses)
        if cached is not None:
            return cached

        components = _connected_components(clauses)
        if len(components) > 1:
            # Disjoint variable sets: the events "some clause of component i
            # holds" are independent, so the union's complement factors.
            miss: Prob = Fraction(1)
            for component in components:
                miss = miss * (1 - self.solve(component))
            result: Prob = 1 - miss
        else:
            var = _branching_variable(clauses)
            result = Fraction(0)
            for value in self.w.domain(var):
                reduced = self._condition_on(clauses, var, value)
                if reduced is _SATISFIED:
                    branch: Prob = Fraction(1)
                else:
                    branch = self.solve(reduced)
                result = result + self.w.prob(var, value) * branch

        self._memo[clauses] = result
        return result

    @staticmethod
    def _condition_on(clauses: frozenset[Condition], var: Var, value):
        """Simplify the clause set under X := value.

        Clauses requiring a different value die; clauses requiring this
        value lose the variable (an emptied clause satisfies everything).
        """
        out: set[Condition] = set()
        for clause in clauses:
            if var in clause:
                if clause[var] != value:
                    continue
                rest = clause.restricted_to(clause.variables - {var})
                if rest.is_empty:
                    return _SATISFIED
                out.add(rest)
            else:
                out.add(clause)
        return frozenset(out)


class _Satisfied:
    """Sentinel: conditioning made some clause trivially true."""

    __slots__ = ()


_SATISFIED = _Satisfied()


def _connected_components(clauses: frozenset[Condition]) -> list[frozenset[Condition]]:
    """Partition clauses into groups sharing no variables (union-find)."""
    clause_list = sorted(clauses, key=repr)
    parent = list(range(len(clause_list)))

    def find(i: int) -> int:
        while parent[i] != i:
            parent[i] = parent[parent[i]]
            i = parent[i]
        return i

    def union(i: int, j: int) -> None:
        ri, rj = find(i), find(j)
        if ri != rj:
            parent[ri] = rj

    owner: dict[Var, int] = {}
    for i, clause in enumerate(clause_list):
        for var in clause.variables:
            if var in owner:
                union(i, owner[var])
            else:
                owner[var] = i

    groups: dict[int, set[Condition]] = {}
    for i, clause in enumerate(clause_list):
        groups.setdefault(find(i), set()).add(clause)
    return [frozenset(g) for g in groups.values()]


def _branching_variable(clauses: frozenset[Condition]) -> Var:
    """Most frequently-occurring variable (ties broken by repr for determinism)."""
    counts: dict[Var, int] = {}
    for clause in clauses:
        for var in clause.variables:
            counts[var] = counts.get(var, 0) + 1
    return max(sorted(counts, key=repr), key=lambda v: counts[v])
