"""Naive Monte-Carlo confidence estimation — the baseline Karp–Luby beats.

The obvious estimator samples a full world from W and checks whether any
member of F is satisfied; the mean over m worlds estimates p directly.
Its guarantee is only *additive* (Hoeffding): to certify a relative
error ε on a tuple of confidence p one needs m = Θ(1/(p·ε²)) samples —
unbounded as p → 0 — whereas Karp–Luby needs m = O(|F|·ln(2/δ)/ε²)
*independent of p*.  Benchmark E6 measures exactly this gap; MystiQ-style
systems [7, 16] use Monte-Carlo simulation of this general flavour, which
is why the paper adopts Karp–Luby instead.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass

from repro.confidence.dnf import Dnf
from repro.util.rng import ensure_rng

__all__ = ["NaiveEstimate", "naive_confidence", "naive_sample_size_additive"]


@dataclass(frozen=True)
class NaiveEstimate:
    """Result of a naive Monte-Carlo run."""

    estimate: float
    samples: int
    positives: int

    def additive_error_bound(self, eps_abs: float) -> float:
        """Hoeffding: Pr[|p̂ − p| ≥ ε_abs] ≤ 2·e^{−2·m·ε_abs²}."""
        if eps_abs <= 0 or self.samples <= 0:
            return 1.0
        return min(1.0, 2.0 * math.exp(-2.0 * self.samples * eps_abs * eps_abs))


def naive_sample_size_additive(eps_abs: float, delta: float) -> int:
    """m = ⌈ln(2/δ) / (2·ε_abs²)⌉ for an additive (ε_abs, δ) guarantee."""
    if eps_abs <= 0:
        raise ValueError("eps_abs must be positive")
    if not 0 < delta < 1:
        raise ValueError("delta must be in (0,1)")
    return math.ceil(math.log(2.0 / delta) / (2.0 * eps_abs * eps_abs))


def naive_confidence(
    dnf: Dnf, samples: int, rng: random.Random | int | None = None
) -> NaiveEstimate:
    """Estimate p by sampling ``samples`` full worlds over vars(F)."""
    generator = ensure_rng(rng)
    if dnf.is_trivially_true:
        return NaiveEstimate(1.0, 0, 0)
    if dnf.is_empty:
        return NaiveEstimate(0.0, 0, 0)
    variables = sorted(dnf.variables, key=repr)
    positives = 0
    for _ in range(samples):
        world = {v: dnf.w.sample_value(v, generator) for v in variables}
        if dnf.evaluate(world):
            positives += 1
    return NaiveEstimate(positives / samples if samples else 0.0, samples, positives)
