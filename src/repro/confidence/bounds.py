"""Chernoff-bound machinery for the Karp–Luby FPRAS and Sections 5–6.

The paper instantiates the Chernoff bound (Mitzenmacher–Upfal Eq. 4.6)

    Pr[|X − E[X]| ≥ ε·E[X]] ≤ 2·e^{−ε²·E[X]/3}

to obtain, for m Karp–Luby trials on a disjunction of size |F|,

    δ(ε) = Pr[|p̂ − p| ≥ ε·p] ≤ 2·e^{−m·ε²/(3·|F|)}            (Section 4)

and the balanced per-value bound of the Figure 3 algorithm,

    δ′(ε, l) = 2·e^{−l·ε²/3}                                    (Section 5)

where l is the number of outer-loop rounds (each round spends |F_i|
estimator invocations per value, so m_i = l·|F_i|).  All inverse forms
(sample sizes, round counts) are here too, so every module quotes the
same formulas.
"""

from __future__ import annotations

import math
from collections.abc import Iterable

__all__ = [
    "karp_luby_error_bound",
    "karp_luby_sample_size",
    "delta_prime",
    "rounds_for",
    "eps_for_rounds",
    "combine_union",
    "combine_independent",
]


def karp_luby_error_bound(eps: float, m: int, size_f: int) -> float:
    """δ(ε) = 2·e^{−m·ε²/(3·|F|)}: error bound after m trials (Section 4).

    For ``|F| = 0`` (empty disjunction) or ``eps <= 0`` the estimate is not
    probabilistic in a useful sense; we return the vacuous bound 1.0 capped
    below by the formula where defined.
    """
    if size_f <= 0 or eps <= 0:
        return 1.0
    if m <= 0:
        return 1.0
    return min(1.0, 2.0 * math.exp(-(m * eps * eps) / (3.0 * size_f)))


def karp_luby_sample_size(eps: float, delta: float, size_f: int) -> int:
    """m = ⌈3·|F|·ln(2/δ) / ε²⌉: trials for an (ε, δ) guarantee (Section 4)."""
    if not 0 < eps:
        raise ValueError(f"eps must be positive, got {eps}")
    if not 0 < delta < 1:
        raise ValueError(f"delta must be in (0,1), got {delta}")
    if size_f <= 0:
        return 0
    return math.ceil(3.0 * size_f * math.log(2.0 / delta) / (eps * eps))


def delta_prime(eps: float, rounds: int) -> float:
    """δ′(ε, l) = 2·e^{−l·ε²/3}: balanced per-value bound (Sections 5–6)."""
    if eps <= 0 or rounds <= 0:
        return 1.0
    return min(1.0, 2.0 * math.exp(-(rounds * eps * eps) / 3.0))


def rounds_for(eps: float, delta: float) -> int:
    """The smallest l with δ′(ε, l) ≤ δ, i.e. l = ⌈3·ln(2/δ)/ε²⌉.

    Theorem 6.7 uses l₀ ≥ 3·log(2·k·d·n^{kd}/δ)/ε₀².
    """
    if not 0 < eps:
        raise ValueError(f"eps must be positive, got {eps}")
    if not 0 < delta < 1:
        raise ValueError(f"delta must be in (0,1), got {delta}")
    return math.ceil(3.0 * math.log(2.0 / delta) / (eps * eps))


def eps_for_rounds(delta: float, rounds: int) -> float:
    """The ε at which l rounds reach bound δ (inverse of :func:`delta_prime`)."""
    if rounds <= 0:
        raise ValueError("rounds must be positive")
    if not 0 < delta < 1:
        raise ValueError(f"delta must be in (0,1), got {delta}")
    return math.sqrt(3.0 * math.log(2.0 / delta) / rounds)


def combine_union(deltas: Iterable[float]) -> float:
    """Union bound Σδᵢ, capped at 1 (Lemma 5.1, general case)."""
    return min(1.0, sum(deltas))


def combine_independent(deltas: Iterable[float]) -> float:
    """1 − Π(1−δᵢ): the sharper bound for independent estimates (Lemma 5.1).

    "The independence assumption is often realistic if the pᵢ are the
    results of an approximate computation on a reliable input", e.g.
    independent Karp–Luby runs.
    """
    prod = 1.0
    for d in deltas:
        prod *= max(0.0, 1.0 - d)
    return min(1.0, 1.0 - prod)
