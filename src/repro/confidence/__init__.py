"""Confidence computation (Section 4): exact #P solvers and the Karp–Luby FPRAS."""

from repro.confidence.batch import (
    HAS_NUMPY,
    BackendUnavailableError,
    BatchKarpLubySampler,
    available_backends,
    batch_approximate_confidence,
    batch_naive_confidence,
    default_backend,
    resolve_backend,
    shared_block_confidences,
)
from repro.confidence.bounds import (
    combine_independent,
    combine_union,
    delta_prime,
    eps_for_rounds,
    karp_luby_error_bound,
    karp_luby_sample_size,
    rounds_for,
)
from repro.confidence.dissociation import (
    DEFAULT_BOUND_BUDGET,
    BoundInterval,
    dissociation_interval,
    dissociation_intervals,
)
from repro.confidence.dnf import Dnf
from repro.confidence.exact import (
    EnumerationLimitError,
    exact_probability,
    probability_by_decomposition,
    probability_by_enumeration,
)
from repro.confidence.karp_luby import (
    KarpLubyEstimate,
    KarpLubySampler,
    approximate_confidence,
)
from repro.confidence.naive_mc import (
    NaiveEstimate,
    naive_confidence,
    naive_sample_size_additive,
)

__all__ = [
    "Dnf",
    "BoundInterval",
    "DEFAULT_BOUND_BUDGET",
    "dissociation_interval",
    "dissociation_intervals",
    "HAS_NUMPY",
    "BackendUnavailableError",
    "BatchKarpLubySampler",
    "available_backends",
    "batch_approximate_confidence",
    "batch_naive_confidence",
    "default_backend",
    "resolve_backend",
    "shared_block_confidences",
    "exact_probability",
    "probability_by_enumeration",
    "probability_by_decomposition",
    "EnumerationLimitError",
    "KarpLubySampler",
    "KarpLubyEstimate",
    "approximate_confidence",
    "NaiveEstimate",
    "naive_confidence",
    "naive_sample_size_additive",
    "karp_luby_error_bound",
    "karp_luby_sample_size",
    "delta_prime",
    "rounds_for",
    "eps_for_rounds",
    "combine_union",
    "combine_independent",
]
