"""Vectorized batch Monte Carlo trials — Proposition 4.2 at block granularity.

The Karp–Luby FPRAS (Proposition 4.2: m = ⌈3·|F|·ln(2/δ)/ε²⌉ trials give
Pr[|p̂ − p| ≥ ε·p] ≤ δ) and the naive world-sampling baseline both reduce
to drawing many independent trials over the same disjunction F.  The
scalar samplers in :mod:`repro.confidence.karp_luby` and
:mod:`repro.confidence.naive_mc` draw one trial per Python iteration;
this module draws a *block* of trials at once and evaluates every clause
against the whole block with boolean array operations:

* variables are integer-coded against their W-table domains, so a block
  of m world assignments is an (m × |vars(F)|) integer matrix sampled
  column-by-column through each variable's cumulative distribution;
* clause satisfaction is one equality comparison per (variable, value)
  pair, AND-reduced per clause over the whole block — the Definition 4.1
  "smallest-index consistent member" test becomes an ``argmax`` over the
  (m × |F|) satisfaction matrix;
* the estimator's statistics (X positives out of m trials) accumulate
  across blocks, preserving the *incremental* draw-more-trials contract
  that the Figure 3 predicate-approximation algorithm depends on.

Two interchangeable backends implement the block primitives: ``numpy``
(used automatically when NumPy is importable — install the package's
``fast`` extra) and a dependency-free ``python`` fallback that produces
the same statistics one trial at a time.  Both are deterministic under a
fixed seed, though their streams differ; estimates agree exactly on
degenerate disjunctions and within the Proposition 4.2 (ε, δ) bounds on
sampled ones.

:func:`shared_block_confidences` additionally evaluates *many*
disjunctions against one shared block of world samples — the draw-once,
evaluate-everything pattern behind ``ProbDB.confidence_all``.

Every block entry point also takes an optional
:class:`~repro.util.parallel.ShardExecutor`: the trial budget is then
cut into per-worker blocks by the executor's worker-count-independent
plan, each block draws from a generator seeded by its *block index*
(:func:`~repro.util.parallel.spawn_shard_rng`), and the block statistics
merge by trial-count weighting (positives and trials simply sum, so the
estimate X·M/m is the weighted mean of the block estimates).  Results
are bit-identical for any worker count, including the serial fallback.
"""

from __future__ import annotations

import random
from bisect import bisect_right
from collections.abc import Sequence
from itertools import accumulate

from repro.confidence import bounds
from repro.confidence.dnf import Dnf
from repro.confidence.karp_luby import KarpLubyEstimate
from repro.confidence.naive_mc import NaiveEstimate
from repro.urel.conditions import Var
from repro.util.backends import (
    HAS_NUMPY,
    BackendUnavailableError,
    available_backends,
    default_backend,
    np as _np,
    resolve_backend,
)
from repro.util.parallel import ShardExecutor, shard_seed
from repro.util.rng import ensure_rng

__all__ = [
    "HAS_NUMPY",
    "BackendUnavailableError",
    "available_backends",
    "default_backend",
    "resolve_backend",
    "BatchKarpLubySampler",
    "batch_approximate_confidence",
    "batch_naive_confidence",
    "shared_block_confidences",
]


# --------------------------------------------------------------------------
# Integer coding of a disjunction against its W-table domains
# --------------------------------------------------------------------------


class _EncodedDnf:
    """A :class:`Dnf` lowered to integer codes for block evaluation.

    ``variables`` fixes a column order (sorted by ``repr``, matching the
    scalar samplers); each variable's domain values map to codes
    ``0..k−1`` in the W table's iteration order, so sampling a value is
    one inverse-CDF lookup.  Clause (variable, value) pairs become
    (column, code) pairs; a value outside its variable's domain gets the
    sentinel code −1, which no sampled world ever matches (the clause
    has weight 0 and is unsatisfiable, exactly as in the scalar path).
    """

    __slots__ = (
        "dnf",
        "variables",
        "cumulative_probs",
        "member_pairs",
        "weights",
        "cumulative_weights",
        "total_weight",
    )

    def __init__(self, dnf: Dnf, variables: Sequence[Var] | None = None):
        """Encode ``dnf``; ``variables`` overrides the sorted column order."""
        self.dnf = dnf
        self.variables = (
            sorted(dnf.variables, key=repr) if variables is None else list(variables)
        )
        var_index = {v: i for i, v in enumerate(self.variables)}
        self.cumulative_probs: list[list[float]] = []
        value_codes: list[dict] = []
        for var in self.variables:
            dist = dnf.w.distribution(var)
            self.cumulative_probs.append(list(accumulate(float(p) for p in dist.values())))
            value_codes.append({value: code for code, value in enumerate(dist)})
        self.member_pairs: list[tuple[tuple[int, int], ...]] = []
        for member in dnf.members:
            pairs = tuple(
                (var_index[var], value_codes[var_index[var]].get(value, -1))
                for var, value in sorted(member.items(), key=repr)
            )
            self.member_pairs.append(pairs)
        self.weights = [float(p) for p in dnf.weights]
        self.cumulative_weights = list(accumulate(self.weights))
        self.total_weight = self.cumulative_weights[-1] if self.cumulative_weights else 0.0


# --------------------------------------------------------------------------
# NumPy block primitives
# --------------------------------------------------------------------------


def _np_rng(rng: random.Random):
    """A NumPy generator seeded deterministically from the session stream."""
    return _np.random.default_rng(rng.getrandbits(64))


def _np_sample_block(enc: _EncodedDnf, n: int, nrng):
    """An (n × |vars|) block of world assignments, one inverse-CDF per column."""
    block = _np.empty((n, len(enc.variables)), dtype=_np.int64)
    for column, cum in enumerate(enc.cumulative_probs):
        u = nrng.random(n)
        codes = _np.searchsorted(_np.asarray(cum), u, side="right")
        block[:, column] = _np.minimum(codes, len(cum) - 1)
    return block


def _np_satisfaction(enc: _EncodedDnf, block):
    """The (n × |F|) clause-satisfaction matrix for a block of worlds."""
    n = block.shape[0]
    size = len(enc.member_pairs)
    sat = _np.empty((n, size), dtype=bool)
    for j, pairs in enumerate(enc.member_pairs):
        if not pairs:
            sat[:, j] = True
            continue
        m = block[:, pairs[0][0]] == pairs[0][1]
        for column, code in pairs[1:]:
            m &= block[:, column] == code
        sat[:, j] = m
    return sat


def _np_karp_luby_block(enc: _EncodedDnf, n: int, nrng) -> int:
    """Count positives among ``n`` Definition 4.1 trials, drawn as one block.

    Step 1 (member choice ∝ p_f) is an inverse-CDF over the clause
    weights; step 2 (extension sampling) draws the full block and then
    overwrites each row's chosen-clause columns with the clause's fixed
    codes; step 3 is ``argmax`` over the satisfaction matrix — the row's
    chosen clause is consistent by construction, so the first ``True``
    index always exists and the trial succeeds iff it equals the choice.
    """
    cum = _np.asarray(enc.cumulative_weights)
    u = nrng.random(n) * enc.total_weight
    choice = _np.minimum(_np.searchsorted(cum, u, side="right"), len(cum) - 1)
    block = _np_sample_block(enc, n, nrng)
    for j, pairs in enumerate(enc.member_pairs):
        rows = choice == j
        if not rows.any():
            continue
        for column, code in pairs:
            block[rows, column] = code
    sat = _np_satisfaction(enc, block)
    first = sat.argmax(axis=1)
    return int((first == choice).sum())


def _np_naive_block(enc: _EncodedDnf, n: int, nrng) -> int:
    """Count the worlds (out of ``n`` sampled) satisfying some clause."""
    block = _np_sample_block(enc, n, nrng)
    return int(_np_satisfaction(enc, block).any(axis=1).sum())


# --------------------------------------------------------------------------
# Pure-Python block primitives (same statistics, one trial per iteration)
# --------------------------------------------------------------------------


def _py_sample_codes(enc: _EncodedDnf, rng: random.Random) -> list[int]:
    codes = []
    for cum in enc.cumulative_probs:
        u = rng.random()
        code = bisect_right(cum, u)
        codes.append(min(code, len(cum) - 1))
    return codes


def _py_satisfied(pairs: tuple[tuple[int, int], ...], codes: list[int]) -> bool:
    return all(codes[column] == code for column, code in pairs)


def _py_karp_luby_block(enc: _EncodedDnf, n: int, rng: random.Random) -> int:
    positives = 0
    size = len(enc.member_pairs)
    for _ in range(n):
        u = rng.random() * enc.total_weight
        choice = min(bisect_right(enc.cumulative_weights, u), size - 1)
        codes = _py_sample_codes(enc, rng)
        for column, code in enc.member_pairs[choice]:
            codes[column] = code
        first = next(
            (j for j, pairs in enumerate(enc.member_pairs) if _py_satisfied(pairs, codes)),
            -1,
        )
        if first == choice:
            positives += 1
    return positives


def _py_naive_block(enc: _EncodedDnf, n: int, rng: random.Random) -> int:
    positives = 0
    for _ in range(n):
        codes = _py_sample_codes(enc, rng)
        if any(_py_satisfied(pairs, codes) for pairs in enc.member_pairs):
            positives += 1
    return positives


# --------------------------------------------------------------------------
# Shard tasks: per-block trial workers (module level, so they pickle)
# --------------------------------------------------------------------------


def _karp_luby_trial_block(enc: _EncodedDnf, n: int, seed: int, backend: str) -> int:
    """Count positives among ``n`` Definition 4.1 trials from a seeded block."""
    if backend == "numpy":
        return _np_karp_luby_block(enc, n, _np.random.default_rng(seed))
    return _py_karp_luby_block(enc, n, random.Random(seed))


def _naive_trial_block(enc: _EncodedDnf, n: int, seed: int, backend: str) -> int:
    """Satisfying worlds among ``n`` sampled, from a seeded block."""
    if backend == "numpy":
        return _np_naive_block(enc, n, _np.random.default_rng(seed))
    return _py_naive_block(enc, n, random.Random(seed))


def _shared_trial_block(
    encoders: list[_EncodedDnf], n: int, seed: int, backend: str
) -> list[int]:
    """Per-disjunction positives against ONE seeded block of ``n`` worlds.

    The block is shared *within* the task (every DNF sees the same
    worlds, preserving the correlation structure of
    :func:`shared_block_confidences`); across tasks the blocks are
    independent and their counts merge by trial-count weighting.
    """
    if backend == "numpy":
        block = _np_sample_block(encoders[0], n, _np.random.default_rng(seed))
        return [
            int(_np_satisfaction(enc, block).any(axis=1).sum()) for enc in encoders
        ]
    rng = random.Random(seed)
    counts = [0] * len(encoders)
    for _ in range(n):
        codes = _py_sample_codes(encoders[0], rng)
        for k, enc in enumerate(encoders):
            if any(_py_satisfied(pairs, codes) for pairs in enc.member_pairs):
                counts[k] += 1
    return counts


# --------------------------------------------------------------------------
# The incremental batch sampler (Figure 3's draw-more-trials contract)
# --------------------------------------------------------------------------


class BatchKarpLubySampler:
    """Incremental Karp–Luby estimation with block-drawn trials.

    Drop-in counterpart of
    :class:`~repro.confidence.karp_luby.KarpLubySampler`: same degenerate
    handling (empty F → 0, trivially-true F → 1, |F| = 1 → p_f, all
    exact), same readout API (``estimate``/``trials``/``positives``/
    ``error_bound``/``snapshot``), but :meth:`run` materializes all
    requested trials as one vectorized block instead of a Python loop.
    The Figure 3 algorithm refines by repeatedly calling ``run(|F|)``;
    every such refinement is one block.

    With an ``executor``, :meth:`run` cuts each requested budget into
    per-worker blocks by the executor's (worker-count-independent) trial
    plan, seeds block ``i`` from ``(one parent draw, i)``, and sums the
    block positives — the trial-count-weighted merge of the block
    estimates.  Estimates are then bit-identical for every worker count
    (including ``workers=1``), though the stream differs from the
    executor-less sampler.
    """

    def __init__(
        self,
        dnf: Dnf,
        rng: random.Random | int | None = None,
        backend: str | None = None,
        executor: "ShardExecutor | None" = None,
    ):
        """Set up block sampling for ``dnf`` (backend/executor as in the scalar sampler)."""
        self.dnf = dnf
        self.backend = resolve_backend(backend)
        self.rng = ensure_rng(rng)
        self.executor = executor
        self.trials = 0
        self.positives = 0
        self._enc = _EncodedDnf(dnf)
        self._nrng = (
            _np_rng(self.rng)
            if self.backend == "numpy" and executor is None
            else None
        )
        if dnf.is_trivially_true:
            self._exact_value: float | None = 1.0
        elif dnf.is_empty:
            self._exact_value = 0.0
        elif dnf.size == 1:
            self._exact_value = self._enc.total_weight
        else:
            self._exact_value = None

    @property
    def is_exact(self) -> bool:
        """True when the confidence is known exactly without sampling."""
        return self._exact_value is not None

    def run(self, n_trials: int) -> None:
        """Accumulate ``n_trials`` further Definition 4.1 trials.

        Without an executor this is one block on the sampler's own
        stream; with one, the budget is sharded as documented above.
        """
        if n_trials <= 0 or self.is_exact:
            return
        if self.executor is not None:
            base = self.rng.getrandbits(64)
            blocks = self.executor.plan_trials(n_trials)
            self.positives += sum(
                self.executor.map(
                    _karp_luby_trial_block,
                    [
                        (self._enc, count, shard_seed(base, i), self.backend)
                        for i, count in enumerate(blocks)
                    ],
                )
            )
        elif self.backend == "numpy":
            self.positives += _np_karp_luby_block(self._enc, n_trials, self._nrng)
        else:
            self.positives += _py_karp_luby_block(self._enc, n_trials, self.rng)
        self.trials += n_trials

    def draw(self) -> int:
        """One trial (block of size 1) — parity with the scalar sampler."""
        before = self.positives
        self.run(1)
        return self.positives - before

    @property
    def estimate(self) -> float:
        """p̂ = X·M/m (or the exact value for degenerate disjunctions)."""
        if self._exact_value is not None:
            return self._exact_value
        if self.trials == 0:
            raise RuntimeError("no trials drawn yet")
        return self.positives * self._enc.total_weight / self.trials

    def error_bound(self, eps: float) -> float:
        """δ(ε) = 2·e^{−m·ε²/(3|F|)} for the trials drawn so far."""
        if self._exact_value is not None:
            return 0.0
        return bounds.karp_luby_error_bound(eps, self.trials, self.dnf.size)

    def snapshot(self, eps: float | None = None, delta: float | None = None) -> KarpLubyEstimate:
        """Freeze the current state into a :class:`KarpLubyEstimate`."""
        return KarpLubyEstimate(
            estimate=self.estimate,
            samples=self.trials,
            positives=self.positives,
            total_weight=self._enc.total_weight,
            size=self.dnf.size,
            eps=eps,
            delta=delta,
            exact=self._exact_value is not None,
        )


def batch_approximate_confidence(
    dnf: Dnf,
    eps: float,
    delta: float,
    rng: random.Random | int | None = None,
    backend: str | None = None,
    executor: "ShardExecutor | None" = None,
) -> KarpLubyEstimate:
    """The Proposition 4.2 FPRAS with the whole trial budget as one block.

    Identical guarantee to
    :func:`~repro.confidence.karp_luby.approximate_confidence` — the
    m = ⌈3·|F|·ln(2/δ)/ε²⌉ trials come from the same estimator, merely
    drawn together — at a fraction of the interpreter overhead.  With an
    ``executor`` the budget runs as per-worker blocks whose statistics
    merge by trial-count weighting (see :class:`BatchKarpLubySampler`).
    """
    sampler = BatchKarpLubySampler(dnf, rng, backend=backend, executor=executor)
    if sampler.is_exact:
        return sampler.snapshot(eps, delta)
    sampler.run(bounds.karp_luby_sample_size(eps, delta, dnf.size))
    return sampler.snapshot(eps, delta)


def batch_naive_confidence(
    dnf: Dnf,
    samples: int,
    rng: random.Random | int | None = None,
    backend: str | None = None,
    executor: "ShardExecutor | None" = None,
) -> NaiveEstimate:
    """Naive world-sampling estimate of p with trials drawn as one block."""
    generator = ensure_rng(rng)
    if dnf.is_trivially_true:
        return NaiveEstimate(1.0, 0, 0)
    if dnf.is_empty:
        return NaiveEstimate(0.0, 0, 0)
    enc = _EncodedDnf(dnf)
    if samples <= 0:
        return NaiveEstimate(0.0, 0, 0)
    concrete = resolve_backend(backend)
    if executor is not None:
        base = generator.getrandbits(64)
        positives = sum(
            executor.map(
                _naive_trial_block,
                [
                    (enc, count, shard_seed(base, i), concrete)
                    for i, count in enumerate(executor.plan_trials(samples))
                ],
            )
        )
    elif concrete == "numpy":
        positives = _np_naive_block(enc, samples, _np_rng(generator))
    else:
        positives = _py_naive_block(enc, samples, generator)
    return NaiveEstimate(positives / samples, samples, positives)


def shared_block_confidences(
    dnfs: Sequence[Dnf],
    samples: int,
    rng: random.Random | int | None = None,
    backend: str | None = None,
    executor: "ShardExecutor | None" = None,
) -> list[NaiveEstimate]:
    """Estimate every disjunction against ONE shared block of worlds.

    Draws ``samples`` world assignments over the union of the
    disjunctions' variables once, then evaluates each DNF's clauses
    against the whole block — the batched-query pattern of
    ``ProbDB.confidence_all``: the sampling cost is paid once per query,
    not once per result tuple.  Estimates for degenerate disjunctions
    are exact, as in the scalar path.  All disjunctions must share one
    W table.

    With an ``executor`` the sample budget is cut into per-worker blocks
    (each still shared by every DNF *within* the block, so the per-block
    correlation structure is preserved); per-DNF positives sum across
    blocks — the trial-count-weighted merge.
    """
    generator = ensure_rng(rng)
    concrete = resolve_backend(backend)
    results: list[NaiveEstimate | None] = [None] * len(dnfs)
    sampled: list[int] = []
    for i, dnf in enumerate(dnfs):
        if dnf.is_trivially_true:
            results[i] = NaiveEstimate(1.0, 0, 0)
        elif dnf.is_empty:
            results[i] = NaiveEstimate(0.0, 0, 0)
        else:
            sampled.append(i)
    if not sampled or samples <= 0:
        return [r if r is not None else NaiveEstimate(0.0, 0, 0) for r in results]

    w = dnfs[sampled[0]].w
    union_vars: set[Var] = set()
    for i in sampled:
        if dnfs[i].w is not w:
            raise ValueError("shared_block_confidences needs one common W table")
        union_vars |= dnfs[i].variables
    variables = sorted(union_vars, key=repr)
    encoders = [_EncodedDnf(dnfs[i], variables) for i in sampled]

    if executor is not None:
        base = generator.getrandbits(64)
        per_block = executor.map(
            _shared_trial_block,
            [
                (encoders, count, shard_seed(base, i), concrete)
                for i, count in enumerate(executor.plan_trials(samples))
            ],
        )
        counts = [sum(block[k] for block in per_block) for k in range(len(sampled))]
        for k, i in enumerate(sampled):
            results[i] = NaiveEstimate(counts[k] / samples, samples, counts[k])
        return results

    if concrete == "numpy":
        nrng = _np_rng(generator)
        block = _np_sample_block(encoders[0], samples, nrng)
        for i, enc in zip(sampled, encoders):
            positives = int(_np_satisfaction(enc, block).any(axis=1).sum())
            results[i] = NaiveEstimate(positives / samples, samples, positives)
    else:
        counts = [0] * len(sampled)
        for _ in range(samples):
            codes = _py_sample_codes(encoders[0], generator)
            for k, enc in enumerate(encoders):
                if any(_py_satisfied(pairs, codes) for pairs in enc.member_pairs):
                    counts[k] += 1
        for k, i in enumerate(sampled):
            results[i] = NaiveEstimate(counts[k] / samples, samples, counts[k])
    return results
