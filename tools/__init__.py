"""Repo maintenance tooling (not shipped with the library).

``tools.detlint`` is the determinism/concurrency static analyzer run by
the ``static-analysis`` CI job; ``tools/check_links.py`` validates
intra-repo markdown links for the ``docs-check`` job.
"""
