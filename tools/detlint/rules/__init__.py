"""Bundled detlint rules — importing this package registers all of them."""

from tools.detlint.rules import (  # noqa: F401  (registration side effect)
    det001_rng,
    det002_set_order,
    det003_shard_kernels,
    det004_guarded_by,
    det005_cache_tokens,
    det006_fork_safety,
)
