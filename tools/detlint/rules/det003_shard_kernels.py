"""DET003 — shard kernels must be module-level functions.

``ShardExecutor`` pickles the kernel when the process backend is active
(fork *and* spawn), so anything submitted to ``.map``/``.submit`` must
be importable by qualified name.  Lambdas, closures (functions defined
inside another function), module-level ``name = lambda ...`` bindings
(their ``__qualname__`` is still ``<lambda>``), and bound methods all
fail that test — some loudly under spawn, some only on the process
backend, which is exactly the config-dependent breakage the linter
exists to catch before CI's backend matrix does.

The receiver is matched by name (last dotted segment in the configured
``executor-names`` list, default ``executor``/``_executor``/``pool``/
``_pool``), so the rule also covers raw ``concurrent.futures`` pools.
``functools.partial(...)`` is unwrapped and its wrapped callable judged
by the same rules.  Unresolvable callables (parameters, call results)
pass — the rule only flags what it can prove.
"""

from __future__ import annotations

import ast

from tools.detlint.framework import Rule, dotted_name, register_rule

_DEFAULT_EXECUTOR_NAMES = ["executor", "_executor", "pool", "_pool"]
_SUBMIT_METHODS = frozenset({"map", "submit"})


@register_rule
class ShardKernelPicklability(Rule):
    """Flag unpicklable callables handed to shard executors."""

    rule_id = "DET003"
    severity = "error"
    description = "callable passed to a shard executor is not a module-level function"

    def _ensure_index(self) -> None:
        """Classify every function binding in the file (lazily, once)."""
        if hasattr(self, "_module_defs"):
            return
        self._module_defs: set[str] = set()
        self._module_lambdas: set[str] = set()
        self._nested_defs: set[str] = set()
        for stmt in self.ctx.tree.body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                self._module_defs.add(stmt.name)
            elif isinstance(stmt, ast.Assign) and isinstance(stmt.value, ast.Lambda):
                for target in stmt.targets:
                    if isinstance(target, ast.Name):
                        self._module_lambdas.add(target.id)
        # Functions defined inside other functions are closures; methods
        # (defined inside classes) are unreachable as bare names and are
        # covered by the Attribute branch instead.
        stack: list[tuple[ast.AST, bool]] = [(self.ctx.tree, False)]
        while stack:
            node, in_func = stack.pop()
            for child in ast.iter_child_nodes(node):
                if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    if in_func:
                        self._nested_defs.add(child.name)
                    stack.append((child, True))
                elif isinstance(child, ast.ClassDef):
                    stack.append((child, False))
                else:
                    stack.append((child, in_func))

    def visit_Call(self, node: ast.Call) -> None:
        func = node.func
        if not (isinstance(func, ast.Attribute) and func.attr in _SUBMIT_METHODS):
            return
        receiver = dotted_name(func.value)
        if receiver is None:
            return
        names = self.options.get("executor-names", _DEFAULT_EXECUTOR_NAMES)
        if receiver.rsplit(".", 1)[-1] not in names:
            return
        if not node.args:
            return
        self._ensure_index()
        self._check_kernel(node.args[0], func.attr)

    def _check_kernel(self, kernel: ast.AST, method: str) -> None:
        if isinstance(kernel, ast.Lambda):
            self.report(kernel, (
                f"lambda passed to executor.{method}() cannot be pickled for "
                "process workers; define a module-level function"
            ))
            return
        if isinstance(kernel, ast.Call):
            # functools.partial(fn, ...) is fine iff fn is.
            target = dotted_name(kernel.func)
            if target is not None:
                head, _, rest = target.partition(".")
                resolved = self.walker.resolve(head)
                qualified = (f"{resolved}.{rest}" if rest else resolved) if resolved else target
                if qualified in ("functools.partial", "partial") and kernel.args:
                    self._check_kernel(kernel.args[0], method)
            return
        if isinstance(kernel, ast.Name):
            name = kernel.id
            if name in self._module_lambdas:
                self.report(kernel, (
                    f"{name} is a module-level lambda; its __qualname__ is "
                    "'<lambda>' so it cannot be pickled by reference — make it "
                    "a def"
                ))
            elif name in self._nested_defs and name not in self._module_defs:
                self.report(kernel, (
                    f"{name} is defined inside another function (a closure) and "
                    "cannot be pickled for process workers; hoist it to module "
                    "level and pass captured state as arguments"
                ))
            return
        if isinstance(kernel, ast.Attribute):
            target = dotted_name(kernel)
            if target is None:
                # Attribute of a call result etc.: a bound method of some
                # runtime object — not a module-level function.
                self.report(kernel, (
                    f"executor.{method}() receives a bound method; pass a "
                    "module-level function and the instance state explicitly"
                ))
                return
            head = target.partition(".")[0]
            if self.walker.resolve(head) is not None:
                return  # module attribute, e.g. os.getpid — importable
            self.report(kernel, (
                f"{target} is a bound method (receiver {head!r} is not an "
                "imported module); shard kernels must be module-level functions "
                "— pass the instance state as an argument instead"
            ))
