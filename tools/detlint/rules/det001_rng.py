"""DET001 — unseeded randomness / wall-clock reads in deterministic code.

The determinism contract demands that every random draw be a pure
function of a caller-supplied seed: stochastic components accept a
``random.Random`` (or derive one via ``shard_seed``/``spawn_shard_rng``
per shard index).  Three bug classes violate that:

* module-level ``random.*`` functions — they consume the process-global
  generator, whose state depends on import order and every other caller;
* NumPy global-state randomness (``np.random.rand`` etc.) and unseeded
  constructors (``np.random.default_rng()`` with no seed,
  ``random.Random()`` with no arguments);
* wall-clock reads (``time.time``, ``perf_counter``, ``datetime.now``)
  flowing into computed values.  Timing *instrumentation* is legitimate
  — scope it out with the ``wall-clock-ok`` path list.
"""

from __future__ import annotations

import ast

from tools.detlint.framework import Rule, dotted_name, register_rule

_RANDOM_FUNCS = frozenset({
    "random", "randint", "randrange", "uniform", "triangular", "betavariate",
    "binomialvariate", "expovariate", "gammavariate", "gauss", "lognormvariate",
    "normalvariate", "vonmisesvariate", "paretovariate", "weibullvariate",
    "choice", "choices", "shuffle", "sample", "getrandbits", "randbytes",
    "seed", "setstate",
})

# numpy.random names that are fine *when seeded* (flagged only if
# called with no arguments); everything else under numpy.random is
# global-state by construction.
_NP_SEEDED_OK = frozenset({"default_rng", "Generator", "SeedSequence", "PCG64",
                           "Philox", "MT19937", "RandomState"})

_TIME_FUNCS = frozenset({
    "time.time", "time.time_ns", "time.monotonic", "time.monotonic_ns",
    "time.perf_counter", "time.perf_counter_ns",
})

_DATETIME_ATTRS = frozenset({"now", "utcnow", "today"})


@register_rule
class UnseededRandomness(Rule):
    """Flag nondeterministic entropy sources in deterministic modules."""

    rule_id = "DET001"
    severity = "error"
    description = "unseeded randomness or wall-clock read in a deterministic module"

    def _qualified(self, func: ast.AST) -> str | None:
        """Resolve the called name through import aliases.

        ``np.random.rand`` -> ``numpy.random.rand``;
        ``from random import shuffle; shuffle`` -> ``random.shuffle``.
        """
        name = dotted_name(func)
        if name is None:
            return None
        head, _, rest = name.partition(".")
        real = self.walker.resolve(head)
        if real is not None:
            name = f"{real}.{rest}" if rest else real
        return name

    def _wall_clock_ok(self) -> bool:
        paths = self.options.get("wall-clock-ok", [])
        return self.ctx.config._under(self.ctx.path, paths)

    def visit_Call(self, node: ast.Call) -> None:
        name = self._qualified(node.func)
        if name is None:
            return
        if name.startswith("random."):
            attr = name[len("random."):]
            if attr in _RANDOM_FUNCS:
                self.report(node, (
                    f"random.{attr}() draws from the process-global generator; "
                    "accept a seeded random.Random (see repro.util.rng) instead"
                ))
            elif attr == "Random" and not node.args:
                self.report(node, (
                    "random.Random() with no seed is nondeterministic; derive the "
                    "stream via shard_seed()/spawn_shard_rng() or a caller seed"
                ))
        elif name.startswith("numpy.random."):
            attr = name.rsplit(".", 1)[1]
            if attr in _NP_SEEDED_OK:
                if not node.args and not node.keywords:
                    self.report(node, (
                        f"numpy.random.{attr}() without a seed is nondeterministic; "
                        "seed it from the session stream (rng.getrandbits(64))"
                    ))
            else:
                self.report(node, (
                    f"numpy.random.{attr} uses NumPy's global RNG state; use a "
                    "seeded numpy.random.default_rng(seed) generator"
                ))
        elif name in _TIME_FUNCS or name.rsplit(".", 1)[-1] in _DATETIME_ATTRS and (
            "datetime" in name or name.startswith("date.")
        ):
            if not self._wall_clock_ok():
                self.report(node, (
                    f"{name}() reads the wall clock; deterministic code must not "
                    "let real time flow into values (instrumentation-only modules "
                    "belong in this rule's wall-clock-ok list)"
                ))
