"""DET002 — set/frozenset iteration order escaping into ordered output.

``set``/``frozenset`` iteration order depends on ``PYTHONHASHSEED`` (and
on insertion history), so any code path that lets it reach output rows,
cache keys, task lists, or RNG consumption produces answers that differ
across processes — exactly the class of bug the cross-worker
differential harness exists to catch hours later.  The sanctioned fix is
an intervening ``sorted(..., key=repr)``.

The rule tracks *orderedness* per expression:

* unordered: set literals/comprehensions, ``set()``/``frozenset()``
  calls, set operators (``|  &  -  ^``) over unordered operands,
  parameters/variables annotated ``set[...]``/``frozenset[...]``, locals
  assigned from any of these, and attributes named in the configured
  ``set-returning-attrs`` list (e.g. ``.variables``) — unless the
  enclosing class assigns that attribute from ``sorted``/``list``/
  ``tuple`` (then it is ordered, whatever its name);
* ordered: ``sorted(...)``, ``list(...)``, ``tuple(...)`` results.

It flags unordered iterables in order-*capturing* positions only —
``list``/``tuple``/``enumerate``/``iter``/``map``/``filter``/``zip``/
``reversed``/``sum``/``str.join`` arguments, list/dict comprehensions,
generator expressions feeding anything but an order-insensitive consumer
(``any``/``all``/``min``/``max``/``set``/``frozenset``/``sorted``),
``*`` unpacking, and ``for`` loops whose body captures order (``yield``,
``.append``/``.extend``/``.insert``, or an RNG draw per element).
Membership tests, ``len``, set-typed accumulation, and ``for`` bodies
that only build sets/dicts or delete keys are order-insensitive and stay
clean — that precision is what lets the rule run in fail-on-findings
mode.  (``dict`` iteration is insertion-ordered in Python and therefore
deterministic once every *insertion* site is — those sites are the ones
this rule checks.)
"""

from __future__ import annotations

import ast

from tools.detlint.framework import Rule, register_rule

ORDERED, UNORDERED, UNKNOWN = "ordered", "unordered", "unknown"

_ORDERING_CALLS = frozenset({"sorted", "list", "tuple"})
_UNORDERED_CALLS = frozenset({"set", "frozenset"})
_SET_METHODS = frozenset({
    "union", "intersection", "difference", "symmetric_difference", "copy",
})
_CAPTURE_CALLS = frozenset({
    "list", "tuple", "enumerate", "iter", "map", "filter", "zip", "reversed", "sum",
})
_SAFE_GENEXP_CONSUMERS = frozenset({
    "any", "all", "min", "max", "set", "frozenset", "sorted", "len",
})
_SET_OPS = (ast.BitOr, ast.BitAnd, ast.Sub, ast.BitXor)
_CAPTURE_METHODS = frozenset({"append", "extend", "insert", "appendleft", "write"})
_RNG_METHODS = frozenset({
    "random", "getrandbits", "randint", "randrange", "choice", "choices",
    "shuffle", "sample", "uniform",
})


def _annotation_unordered(annotation: ast.AST | None) -> bool:
    if annotation is None:
        return False
    if isinstance(annotation, ast.Subscript):
        annotation = annotation.value
    return isinstance(annotation, ast.Name) and annotation.id in _UNORDERED_CALLS


@register_rule
class SetIterationOrder(Rule):
    """Flag hash-order-dependent iteration that escapes into ordered output."""

    rule_id = "DET002"
    severity = "warning"
    description = "set/frozenset iteration order can reach ordered output"

    def visit_Module(self, module: ast.Module) -> None:
        self.set_attrs = frozenset(self.options.get("set-returning-attrs", []))
        self._scope(module.body, {}, {})

    # -------------------------------------------------------- scope walking
    def _scope(self, body: list[ast.stmt], env: dict, class_attrs: dict) -> None:
        """Analyze one scope's statements in source order."""
        for stmt in body:
            self._statement(stmt, env, class_attrs)

    def _statement(self, stmt: ast.stmt, env: dict, class_attrs: dict) -> None:
        if isinstance(stmt, ast.ClassDef):
            attrs = self._class_attr_orderedness(stmt)
            for inner in stmt.body:
                self._statement(inner, {}, attrs)
            return
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            fn_env: dict = {}
            args = stmt.args
            for arg in [*args.posonlyargs, *args.args, *args.kwonlyargs]:
                if _annotation_unordered(arg.annotation):
                    fn_env[arg.arg] = UNORDERED
            self._scope(stmt.body, fn_env, class_attrs)
            return
        # Expression-level escapes anywhere in this statement, with the
        # environment as it stands *before* the statement's bindings.
        self._check_expressions(stmt, env, class_attrs)
        # Sequential local binding (last assignment wins).
        if isinstance(stmt, ast.Assign):
            kind = self._classify(stmt.value, env, class_attrs)
            for target in stmt.targets:
                if isinstance(target, ast.Name):
                    env[target.id] = kind
        elif isinstance(stmt, ast.AnnAssign) and isinstance(stmt.target, ast.Name):
            if _annotation_unordered(stmt.annotation):
                env[stmt.target.id] = UNORDERED
            elif stmt.value is not None:
                env[stmt.target.id] = self._classify(stmt.value, env, class_attrs)
        elif isinstance(stmt, ast.For):
            for name in ast.walk(stmt.target):
                if isinstance(name, ast.Name):
                    env[name.id] = UNKNOWN
        # Recurse into compound statement bodies with the same env (an
        # approximation: branches merge by last-writer-wins, which is
        # fine for a linter that only needs orderedness hints).
        for field in ("body", "orelse", "finalbody", "handlers"):
            children = getattr(stmt, field, None)
            if not children:
                continue
            for child in children:
                if isinstance(child, ast.ExceptHandler):
                    self._scope(child.body, env, class_attrs)
                else:
                    self._statement(child, env, class_attrs)

    def _class_attr_orderedness(self, cls: ast.ClassDef) -> dict:
        """``self.X`` orderedness per attribute, merged across methods."""
        attrs: dict[str, str] = {}
        for node in ast.walk(cls):
            if isinstance(node, ast.Assign):
                targets = node.targets
                value = node.value
            elif isinstance(node, ast.AnnAssign) and node.value is not None:
                targets = [node.target]
                value = node.value
            else:
                continue
            for target in targets:
                if not (
                    isinstance(target, ast.Attribute)
                    and isinstance(target.value, ast.Name)
                    and target.value.id == "self"
                ):
                    continue
                kind = self._classify(value, {}, {})
                if isinstance(node, ast.AnnAssign) and _annotation_unordered(node.annotation):
                    kind = UNORDERED
                seen = attrs.get(target.attr)
                if seen is None:
                    attrs[target.attr] = kind
                elif seen != kind:
                    attrs[target.attr] = UNKNOWN
        return attrs

    # ------------------------------------------------------- classification
    def _classify(self, expr: ast.AST, env: dict, class_attrs: dict) -> str:
        if isinstance(expr, (ast.Set, ast.SetComp)):
            return UNORDERED
        if isinstance(expr, (ast.List, ast.Tuple, ast.ListComp)):
            return ORDERED
        if isinstance(expr, ast.Name):
            return env.get(expr.id, UNKNOWN)
        if isinstance(expr, ast.IfExp):
            kinds = {
                self._classify(expr.body, env, class_attrs),
                self._classify(expr.orelse, env, class_attrs),
            }
            if UNORDERED in kinds:
                return UNORDERED
            return ORDERED if kinds == {ORDERED} else UNKNOWN
        if isinstance(expr, ast.BinOp) and isinstance(expr.op, _SET_OPS):
            if UNORDERED in (
                self._classify(expr.left, env, class_attrs),
                self._classify(expr.right, env, class_attrs),
            ):
                return UNORDERED
            return UNKNOWN
        if isinstance(expr, ast.Attribute):
            if isinstance(expr.value, ast.Name) and expr.value.id == "self":
                known = class_attrs.get(expr.attr)
                if known is not None and known != UNKNOWN:
                    return known
            if expr.attr in self.set_attrs:
                return UNORDERED
            return UNKNOWN
        if isinstance(expr, ast.Call):
            func = expr.func
            if isinstance(func, ast.Name):
                if func.id in _UNORDERED_CALLS:
                    return UNORDERED
                if func.id in _ORDERING_CALLS:
                    return ORDERED
                if func.id == "enumerate" and expr.args:
                    return self._classify(expr.args[0], env, class_attrs)
            elif isinstance(func, ast.Attribute):
                if func.attr in self.set_attrs:
                    return UNORDERED
                if func.attr in _SET_METHODS:
                    return self._classify(func.value, env, class_attrs)
        return UNKNOWN

    # -------------------------------------------------------------- escapes
    def _check_expressions(self, stmt: ast.stmt, env: dict, class_attrs: dict) -> None:
        parents: dict[ast.AST, ast.AST] = {}
        stack: list[ast.AST] = [stmt]
        while stack:
            node = stack.pop()
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
                continue  # handled as their own scopes
            if node is not stmt and isinstance(node, ast.stmt):
                continue  # compound bodies are handled by _statement
            for child in ast.iter_child_nodes(node):
                parents[child] = node
                stack.append(child)
            self._check_node(node, env, class_attrs, parents)

    def _unordered(self, expr: ast.AST, env: dict, class_attrs: dict) -> bool:
        return self._classify(expr, env, class_attrs) == UNORDERED

    def _check_node(self, node: ast.AST, env: dict, class_attrs: dict, parents: dict) -> None:
        if isinstance(node, ast.Call):
            func = node.func
            capture = None
            if isinstance(func, ast.Name) and func.id in _CAPTURE_CALLS:
                capture = func.id
            elif isinstance(func, ast.Attribute) and func.attr == "join":
                capture = "join"
            if capture:
                for arg in node.args:
                    if self._unordered(arg, env, class_attrs):
                        self.report(node, (
                            f"{capture}(...) captures set/frozenset iteration order, "
                            "which depends on the hash seed; sort first "
                            "(sorted(..., key=repr))"
                        ))
        elif isinstance(node, (ast.ListComp, ast.DictComp, ast.GeneratorExp)):
            flagged = any(
                self._unordered(gen.iter, env, class_attrs) for gen in node.generators
            )
            if not flagged:
                return
            if isinstance(node, ast.GeneratorExp):
                parent = parents.get(node)
                if (
                    isinstance(parent, ast.Call)
                    and isinstance(parent.func, ast.Name)
                    and parent.func.id in _SAFE_GENEXP_CONSUMERS
                ):
                    return
            shape = "comprehension" if not isinstance(node, ast.GeneratorExp) else "generator"
            self.report(node, (
                f"{shape} iterates a set/frozenset into an order-sensitive "
                "consumer; its order depends on the hash seed — sort first"
            ))
        elif isinstance(node, ast.Starred):
            if self._unordered(node.value, env, class_attrs):
                self.report(node, (
                    "*-unpacking a set/frozenset captures hash-seed-dependent "
                    "order; sort first"
                ))
        elif isinstance(node, ast.For):
            if self._unordered(node.iter, env, class_attrs):
                trigger = self._order_capture_in_body(node.body)
                if trigger:
                    self.report(node, (
                        f"for-loop over a set/frozenset {trigger}; iteration order "
                        "depends on the hash seed — iterate sorted(..., key=repr)"
                    ))

    @staticmethod
    def _order_capture_in_body(body: list[ast.stmt]) -> str | None:
        """Why the loop body is order-sensitive, or ``None`` if it is not."""
        stack: list[ast.AST] = list(body)
        while stack:
            node = stack.pop()
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
                continue
            if isinstance(node, (ast.Yield, ast.YieldFrom)):
                return "yields per element (order reaches the consumer)"
            if isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute):
                if node.func.attr in _CAPTURE_METHODS:
                    return f"builds a sequence via .{node.func.attr}()"
                if node.func.attr in _RNG_METHODS:
                    return (
                        f"draws randomness per element (.{node.func.attr}()), "
                        "coupling the RNG stream to iteration order"
                    )
            stack.extend(ast.iter_child_nodes(node))
        return None
