"""DET005 — cache tokens must cover every determinism-relevant parameter.

``MemoCache`` keys include each strategy's ``cache_token`` and the
executor's ``plan_token``; any constructor parameter that changes
results but is missing from the token silently serves stale entries
computed under different settings.  That bug class survives every
functional test (the answers are *individually* right) and only shows up
as cross-configuration disagreement.

For every class that defines a token function (any ``def`` named in the
rule's ``token-names`` option) — or that defines ``__init__`` and
inherits a token from a base class in the same module — each
constructor parameter must be referenced in the governing token body as
``self.<p>``, ``self._<p>``, or bare ``<p>``.

Parameters that genuinely must NOT appear (``workers`` — worker count
never affects results, that's the determinism contract; the uniform
``eps``/``delta``/``backend`` signature that exact strategies accept and
ignore) are exempted in the rule's ``exempt`` manifest, keeping the
"this parameter doesn't affect results" claims in one auditable place
rather than scattered through suppression comments.
"""

from __future__ import annotations

import ast

from tools.detlint.framework import Rule, register_rule

_DEFAULT_TOKEN_NAMES = ["cache_token", "plan_token"]


def _functions(cls: ast.ClassDef) -> dict[str, ast.FunctionDef]:
    out: dict[str, ast.FunctionDef] = {}
    for stmt in cls.body:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            out.setdefault(stmt.name, stmt)
    return out


def _referenced(token_fn: ast.FunctionDef) -> set[str]:
    """Names a token body mentions: ``self.X`` attrs and bare names."""
    names: set[str] = set()
    for node in ast.walk(token_fn):
        if (
            isinstance(node, ast.Attribute)
            and isinstance(node.value, ast.Name)
            and node.value.id == "self"
        ):
            names.add(node.attr)
        elif isinstance(node, ast.Name):
            names.add(node.id)
    return names


@register_rule
class CacheTokenCompleteness(Rule):
    """Flag constructor parameters missing from the class's cache token."""

    rule_id = "DET005"
    severity = "error"
    description = "cache token omits a constructor parameter"

    def visit_Module(self, module: ast.Module) -> None:
        token_names = set(self.options.get("token-names", _DEFAULT_TOKEN_NAMES))
        exempt = self.options.get("exempt", {})
        classes = {
            stmt.name: stmt for stmt in module.body if isinstance(stmt, ast.ClassDef)
        }
        for cls in classes.values():
            governing = self._governing_token(cls, classes, token_names)
            if governing is None:
                continue
            token_fn, inherited_from = governing
            init = self._find_init(cls, classes)
            if init is None:
                continue
            params = self._params(init)
            allowed = exempt.get(cls.name, [])
            allowed = set(allowed) if isinstance(allowed, list) else set()
            mentioned = _referenced(token_fn)
            for param in params:
                if param in allowed:
                    continue
                bare = param.lstrip("_")
                if {param, "_" + bare, bare} & mentioned:
                    continue
                anchor = cls if inherited_from else token_fn
                where = (
                    f"the {token_fn.name} inherited from {inherited_from}"
                    if inherited_from else f"{token_fn.name}"
                )
                self.report(anchor, (
                    f"{cls.name}.__init__ takes {param!r} but {where} never "
                    f"references it; if {param!r} affects results, add it to the "
                    "token — if it provably cannot, record it in the DET005 "
                    "exempt manifest in detlint.toml"
                ))

    # ------------------------------------------------------------- lookups
    def _governing_token(self, cls, classes, token_names):
        """(token_fn, inherited_from_name|None) for ``cls``, else None."""
        own = _functions(cls)
        for name in token_names:
            if name in own:
                return own[name], None
        if "__init__" not in own:
            return None  # nothing new to cover
        for base in self._base_chain(cls, classes):
            fns = _functions(base)
            for name in token_names:
                if name in fns:
                    return fns[name], base.name
        return None

    def _find_init(self, cls, classes):
        for candidate in [cls, *self._base_chain(cls, classes)]:
            init = _functions(candidate).get("__init__")
            if init is not None:
                return init
        return None

    @staticmethod
    def _base_chain(cls, classes):
        """Base classes resolvable within this module, nearest first."""
        chain, queue, seen = [], list(cls.bases), {cls.name}
        while queue:
            base = queue.pop(0)
            name = base.id if isinstance(base, ast.Name) else (
                base.attr if isinstance(base, ast.Attribute) else None
            )
            if name is None or name in seen or name not in classes:
                continue
            seen.add(name)
            node = classes[name]
            chain.append(node)
            queue.extend(node.bases)
        return chain

    @staticmethod
    def _params(init: ast.FunctionDef) -> list[str]:
        args = init.args
        params = [a.arg for a in [*args.posonlyargs, *args.args, *args.kwonlyargs]]
        return [p for p in params if p != "self"]
