"""DET004 — writes to ``guarded-by`` fields outside their lock.

Classes declare their concurrency discipline inline::

    self._data = OrderedDict()  # detlint: guarded-by(_lock)

and every subsequent ``self._data = ...`` / ``self._data += ...`` must
sit inside ``with self._lock`` (or inside a method whose ``def`` line
carries ``# detlint: holds(_lock)``, the callers-hold contract used by
``ValueCodec._assign``).  The lock may also be a module-level name
(``_CODEC_LOCK``) or the literal ``event-loop``: the ownership
discipline of components that are deliberately lock-free because a
single event loop owns them (``FairShareScheduler``) — writes are then
legal only inside the declaring class's own methods.

Constructor-family methods (``__init__``, ``__new__``, ``__setstate__``)
are exempt: the object is thread-private until construction returns.

Cross-instance writes (``self._scheduler._ring = ...`` from another
class) are resolved through the rule's ``instances`` option, a mapping
of attribute name -> declaring class, and are flagged under the same
discipline — for ``event-loop`` fields they are *always* a violation.

Declarations are collected repo-wide in a pre-pass, so a helper file
mutating another module's guarded state is still caught.
"""

from __future__ import annotations

import ast

from tools.detlint.framework import Rule, register_rule

_CONSTRUCTION = frozenset({"__init__", "__new__", "__setstate__"})
_EVENT_LOOP = "event-loop"


@register_rule
class GuardedFieldWrites(Rule):
    """Flag guarded-field writes performed outside the declared lock."""

    rule_id = "DET004"
    severity = "error"
    description = "write to a guarded-by field outside its lock"

    def visit_Assign(self, node: ast.Assign) -> None:
        for target in node.targets:
            self._check_target(target)

    def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
        if node.value is not None:
            self._check_target(node.target)

    def visit_AugAssign(self, node: ast.AugAssign) -> None:
        self._check_target(node.target)

    def _check_target(self, target: ast.AST) -> None:
        if isinstance(target, (ast.Tuple, ast.List)):
            for element in target.elts:
                self._check_target(element)
            return
        if not isinstance(target, ast.Attribute):
            return
        base = target.value
        if isinstance(base, ast.Name) and base.id == "self":
            self._check_self_write(target)
        elif (
            isinstance(base, ast.Attribute)
            and isinstance(base.value, ast.Name)
            and base.value.id == "self"
        ):
            self._check_instance_write(target, base.attr)

    def _check_self_write(self, target: ast.Attribute) -> None:
        cls = self.walker.current_class
        if cls is None:
            return
        lock = self.ctx.declarations.guarded.get(cls.name, {}).get(target.attr)
        if lock is None:
            return
        func = self.walker.current_function
        if func is not None and func.name in _CONSTRUCTION:
            return
        if lock == _EVENT_LOOP:
            # Any method of the declaring class is the event loop's own
            # code path; only foreign writes (below) can violate this.
            return
        if self.walker.holding(lock):
            return
        self.report(target, (
            f"{cls.name}.{target.attr} is declared guarded-by({lock}) but this "
            f"write is outside `with {lock}` (add the with-block, or annotate "
            f"the method `# detlint: holds({lock})` if callers hold it)"
        ))

    def _check_instance_write(self, target: ast.Attribute, holder_attr: str) -> None:
        instances = self.options.get("instances", {})
        declaring = instances.get(holder_attr)
        if not isinstance(declaring, str):
            return
        lock = self.ctx.declarations.guarded.get(declaring, {}).get(target.attr)
        if lock is None:
            return
        if lock == _EVENT_LOOP:
            self.report(target, (
                f"{declaring}.{target.attr} is event-loop-owned; writing it from "
                f"outside {declaring}'s own methods breaks the single-owner "
                "discipline — add a method on the owner instead"
            ))
            return
        if self.walker.holding(lock):
            return
        self.report(target, (
            f"{declaring}.{target.attr} is declared guarded-by({lock}) but this "
            f"cross-instance write is outside `with {lock}`"
        ))
