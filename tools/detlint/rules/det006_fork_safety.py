"""DET006 — threads must not exist before the process pool does.

On Linux the default multiprocessing start method is ``fork``, and
forking a process that already runs threads copies a child whose locks
may be held by threads that do not exist there — the classic
fork-after-thread deadlock.  The server therefore calls
``ShardExecutor.prestart()`` (which forks the worker pool) *before*
creating any ``ThreadPoolExecutor`` or ``threading.Thread``.

The rule enforces that ordering per function scope in server code:
within one function body (nested defs excluded — they run later, after
construction), any thread-creating call whose line precedes a
``.prestart()`` call in the same scope is flagged.  Scopes that create
threads but never touch the pool carry no ordering obligation (threads
started after construction are safe); modules with no prestart call at
all are skipped entirely.
"""

from __future__ import annotations

import ast

from tools.detlint.framework import Rule, dotted_name, register_rule

_THREAD_FACTORIES = frozenset({
    "concurrent.futures.ThreadPoolExecutor",
    "concurrent.futures.thread.ThreadPoolExecutor",
    "threading.Thread",
    "threading.Timer",
})


@register_rule
class ForkSafety(Rule):
    """Flag thread creation that precedes process-pool prestart()."""

    rule_id = "DET006"
    severity = "error"
    description = "thread created before the process pool is prestarted"

    def _qualified(self, func: ast.AST) -> str | None:
        name = dotted_name(func)
        if name is None:
            return None
        head, _, rest = name.partition(".")
        real = self.walker.resolve(head)
        if real is not None:
            name = f"{real}.{rest}" if rest else real
        return name

    def _module_has_prestart(self) -> bool:
        if not hasattr(self, "_prestart_somewhere"):
            self._prestart_somewhere = any(
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr == "prestart"
                for node in ast.walk(self.ctx.tree)
            )
        return self._prestart_somewhere

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._check_scope(node.body)

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self._check_scope(node.body)

    def _check_scope(self, body: list[ast.stmt]) -> None:
        if not self._module_has_prestart():
            return
        events: list[tuple[int, str, ast.Call]] = []
        stack: list[ast.AST] = list(body)
        while stack:
            node = stack.pop()
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
                continue
            if isinstance(node, ast.Call):
                if isinstance(node.func, ast.Attribute) and node.func.attr == "prestart":
                    events.append((node.lineno, "prestart", node))
                else:
                    name = self._qualified(node.func)
                    if name in _THREAD_FACTORIES:
                        events.append((node.lineno, "thread", node))
            stack.extend(ast.iter_child_nodes(node))
        if not any(kind == "thread" for _, kind, _ in events):
            return
        if not any(kind == "prestart" for _, kind, _ in events):
            return  # this scope never touches the pool; no ordering to enforce
        events.sort(key=lambda e: e[0])
        prestarted = False
        for _, kind, call in events:
            if kind == "prestart":
                prestarted = True
            elif not prestarted:
                self.report(call, (
                    "thread created before the process pool is prestarted; "
                    "forking after threads exist can deadlock the children — "
                    "call executor.prestart() first, then start threads"
                ))
