"""detlint configuration: ``detlint.toml`` loading and per-rule path scoping.

The file is real TOML; on Python >= 3.11 it is read with :mod:`tomllib`.
For 3.10 (no tomllib, and detlint must not grow dependencies) a minimal
fallback parser handles the subset the config actually uses: ``[a.b.c]``
table headers and ``key = value`` pairs where the value is a string, an
integer, a boolean, or a single-line array of strings.  Keep
``detlint.toml`` inside that subset.
"""

from __future__ import annotations

import re
from pathlib import Path

__all__ = ["Config", "load_config", "parse_toml_subset"]

_HEADER = re.compile(r"^\[([A-Za-z0-9_.\-]+)\]\s*$")
_KEYVAL = re.compile(r"^([A-Za-z0-9_\-]+)\s*=\s*(.+?)\s*$")


def _strip_comment(line: str) -> str:
    """Drop a ``#`` comment that is not inside a quoted string."""
    out = []
    in_str = False
    for ch in line:
        if ch == '"':
            in_str = not in_str
        elif ch == "#" and not in_str:
            break
        out.append(ch)
    return "".join(out).strip()


def _parse_value(raw: str):
    if raw == "true":
        return True
    if raw == "false":
        return False
    if raw.startswith('"') and raw.endswith('"') and len(raw) >= 2:
        return raw[1:-1]
    if raw.startswith("[") and raw.endswith("]"):
        body = raw[1:-1].strip()
        if not body:
            return []
        items = []
        for part in body.split(","):
            part = part.strip()
            if not part:
                continue
            items.append(_parse_value(part))
        return items
    try:
        return int(raw)
    except ValueError:
        raise ValueError(f"unsupported TOML value in detlint config: {raw!r}") from None


def parse_toml_subset(text: str) -> dict:
    """Parse the TOML subset described in the module docstring."""
    root: dict = {}
    table = root
    lines = iter(enumerate(text.splitlines(), start=1))
    for lineno, line in lines:
        line = _strip_comment(line)
        if not line:
            continue
        # Multi-line arrays: join lines until the bracket closes.
        while line.count("[") > line.count("]") and "=" in line:
            _, more = next(lines, (None, None))
            if more is None:
                raise ValueError(f"line {lineno}: unterminated array")
            line += " " + _strip_comment(more)
        header = _HEADER.match(line)
        if header:
            table = root
            for part in header.group(1).split("."):
                table = table.setdefault(part, {})
                if not isinstance(table, dict):
                    raise ValueError(f"line {lineno}: table path collides with a value")
            continue
        pair = _KEYVAL.match(line)
        if pair is None:
            raise ValueError(f"line {lineno}: unparsable config line {line!r}")
        table[pair.group(1)] = _parse_value(pair.group(2))
    return root


def _load_toml(text: str) -> dict:
    try:
        import tomllib
    except ImportError:  # Python 3.10
        return parse_toml_subset(text)
    return tomllib.loads(text)


class Config:
    """Parsed detlint configuration with path-scoping helpers.

    Paths are repo-relative POSIX strings; a rule applies to a file when
    the file falls under one of the rule's ``paths`` prefixes and under
    none of its ``exclude`` prefixes.  Rules without a ``paths`` entry
    apply nowhere (scoping is explicit by design: every rule names the
    tree it guards).
    """

    def __init__(self, data: dict, source_text: str = ""):
        section = data.get("detlint", data)
        self.data = section
        self.source_text = source_text
        self.exclude = list(section.get("exclude", []))
        self.rules = section.get("rules", {})

    def rule_options(self, rule_id: str) -> dict:
        options = self.rules.get(rule_id, {})
        return options if isinstance(options, dict) else {}

    @staticmethod
    def _under(path: str, prefixes: list[str]) -> bool:
        return any(path == p or path.startswith(p.rstrip("/") + "/") for p in prefixes)

    def excluded(self, path: str) -> bool:
        return self._under(path, self.exclude)

    def applies(self, rule_id: str, path: str) -> bool:
        options = self.rule_options(rule_id)
        include = options.get("paths", [])
        if not self._under(path, include):
            return False
        return not self._under(path, options.get("exclude", []))


def load_config(path: Path | None, repo_root: Path) -> Config:
    """Load ``detlint.toml`` (explicit path, or the repo-root default)."""
    candidate = path if path is not None else repo_root / "detlint.toml"
    if not candidate.is_file():
        if path is not None:
            raise FileNotFoundError(f"detlint config not found: {candidate}")
        return Config({}, "")
    text = candidate.read_text(encoding="utf-8")
    return Config(_load_toml(text), text)
