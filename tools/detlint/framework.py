"""detlint rule framework: findings, registry, suppressions, AST dispatch.

One :class:`Walker` walks each file's AST exactly once, maintaining the
shared structural context every rule needs (enclosing class/function,
active ``with <lock>`` blocks, parent links, import aliases) and
dispatching ``visit_<NodeType>`` methods on every registered rule that
is in scope for the file.  Rules therefore never re-walk the tree — the
whole analysis is one parse plus one traversal per file, which is what
keeps the CI job fast enough to gate every push.

Cross-file facts (``guarded-by`` field declarations and ``holds`` lock
annotations, used by DET004) are collected in a cheap pre-pass over all
files (:func:`collect_declarations`) before any rule runs.

Comment conventions understood by the framework:

``# detlint: ignore[DET001] <justification>``
    Suppress the named rule(s) on this line (or the line below the
    comment).  The justification is mandatory — an ignore without one is
    itself a finding (DET000), so suppressions stay auditable.

``# detlint: guarded-by(<lock>)``
    On a ``self.X = ...`` line inside a class: declares attribute ``X``
    lock-protected.  ``<lock>`` is an attribute name (``_lock`` means
    writes must sit inside ``with self._lock``), a module-level name
    (``_CODEC_LOCK``), or the literal ``event-loop`` (writes allowed
    only inside the declaring class's own methods — the single-threaded
    ownership discipline of the scheduler).

``# detlint: holds(<lock>)``
    On a ``def`` line: the method's contract is "callers hold
    ``<lock>``" — its body is analyzed as if inside the lock.
"""

from __future__ import annotations

import ast
import io
import re
import tokenize

__all__ = [
    "Finding",
    "Rule",
    "register_rule",
    "all_rules",
    "FileContext",
    "Walker",
    "Declarations",
    "collect_declarations",
    "SEVERITIES",
]

SEVERITIES = ("warning", "error")

_IGNORE = re.compile(r"detlint:\s*ignore\[([A-Za-z0-9, ]*)\]\s*[-—:]*\s*(.*)")
_GUARDED = re.compile(r"detlint:\s*guarded-by\(([A-Za-z0-9_\-]+)\)")
_HOLDS = re.compile(r"detlint:\s*holds\(([A-Za-z0-9_\-]+)\)")
_DIRECTIVE = re.compile(r"detlint:\s*(\w+)")
_KNOWN_DIRECTIVES = {"ignore", "guarded-by", "holds"}


class Finding:
    """One diagnostic: a rule violation at a source location."""

    __slots__ = ("rule", "severity", "path", "line", "col", "message")

    def __init__(self, rule: str, severity: str, path: str, line: int, col: int, message: str):
        self.rule = rule
        self.severity = severity
        self.path = path
        self.line = line
        self.col = col
        self.message = message

    def sort_key(self) -> tuple:
        return (self.path, self.line, self.col, self.rule)

    def as_dict(self) -> dict:
        return {
            "rule": self.rule,
            "severity": self.severity,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "Finding":
        return cls(
            data["rule"], data["severity"], data["path"],
            data["line"], data["col"], data["message"],
        )

    def render(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: {self.rule} [{self.severity}] {self.message}"

    def __repr__(self) -> str:
        return f"Finding({self.render()!r})"


_RULE_REGISTRY: dict[str, type] = {}


def register_rule(cls: type) -> type:
    """Class decorator adding a rule to the global registry."""
    rule_id = getattr(cls, "rule_id", None)
    if not rule_id or rule_id in _RULE_REGISTRY:
        raise ValueError(f"rule id missing or duplicated: {rule_id!r}")
    if cls.severity not in SEVERITIES:
        raise ValueError(f"{rule_id}: unknown severity {cls.severity!r}")
    _RULE_REGISTRY[rule_id] = cls
    return cls


def all_rules() -> dict[str, type]:
    """The registered rules, importing the bundled rule modules first."""
    import tools.detlint.rules  # noqa: F401  (registration side effect)

    return dict(sorted(_RULE_REGISTRY.items()))


class Rule:
    """Base class for one lint rule.

    Subclasses set ``rule_id``/``severity``/``description`` and define
    ``visit_<NodeType>`` methods; one instance is created per (rule,
    file) pair, so per-file state can live on ``self``.  ``self.walker``
    exposes the shared traversal context.
    """

    rule_id = ""
    severity = "error"
    description = ""

    def __init__(self, ctx: "FileContext", walker: "Walker"):
        self.ctx = ctx
        self.walker = walker
        self.options = ctx.config.rule_options(self.rule_id)

    def report(self, node: ast.AST | int, message: str, col: int | None = None) -> None:
        line = node if isinstance(node, int) else getattr(node, "lineno", 1)
        if col is None:
            col = 0 if isinstance(node, int) else getattr(node, "col_offset", 0)
        if self.ctx.suppressed(line, self.rule_id):
            return
        self.ctx.findings.append(
            Finding(self.rule_id, self.severity, self.ctx.path, line, col, message)
        )

    def finish(self) -> None:
        """Hook called once after the walk (for whole-file checks)."""


class Declarations:
    """Repo-wide facts collected before rules run (DET004's inputs).

    ``guarded``: ``{class_name: {attr: lock}}`` — merged across files
    (class names are unique in this codebase; a collision would merge
    conservatively, producing more checking, never less).
    ``holds``: ``{(path, line): lock}`` for ``detlint: holds(...)``
    annotations, keyed on the ``def`` line.
    """

    def __init__(self) -> None:
        self.guarded: dict[str, dict[str, str]] = {}
        self.holds: dict[tuple[str, int], str] = {}


def extract_comments(source: str) -> dict[int, str]:
    """Map line number -> comment text for every ``#`` comment."""
    comments: dict[int, str] = {}
    try:
        tokens = tokenize.generate_tokens(io.StringIO(source).readline)
        for tok in tokens:
            if tok.type == tokenize.COMMENT:
                comments[tok.start[0]] = tok.string
    except (tokenize.TokenError, IndentationError, SyntaxError):
        pass
    return comments


def collect_declarations(path: str, tree: ast.Module, comments: dict[int, str],
                         decls: Declarations) -> None:
    """Harvest ``guarded-by``/``holds`` annotations from one file."""
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            comment = comments.get(node.lineno, "")
            held = _HOLDS.search(comment)
            if held:
                decls.holds[(path, node.lineno)] = held.group(1)
        if not isinstance(node, ast.ClassDef):
            continue
        for stmt in ast.walk(node):
            if not isinstance(stmt, (ast.Assign, ast.AnnAssign)):
                continue
            comment = comments.get(stmt.lineno, "")
            guard = _GUARDED.search(comment)
            if guard is None:
                continue
            targets = stmt.targets if isinstance(stmt, ast.Assign) else [stmt.target]
            for target in targets:
                if (
                    isinstance(target, ast.Attribute)
                    and isinstance(target.value, ast.Name)
                    and target.value.id == "self"
                ):
                    decls.guarded.setdefault(node.name, {})[target.attr] = guard.group(1)


class FileContext:
    """Everything rules may need about the file under analysis."""

    def __init__(self, path: str, source: str, tree: ast.Module, config, decls: Declarations):
        self.path = path
        self.source = source
        self.tree = tree
        self.config = config
        self.declarations = decls
        self.comments = extract_comments(source)
        self.findings: list[Finding] = []
        # line -> (set of suppressed rule ids, justification)
        self.suppressions: dict[int, tuple[set[str], str]] = {}
        self._parse_suppressions()

    def _parse_suppressions(self) -> None:
        for line, comment in self.comments.items():
            match = _IGNORE.search(comment)
            if match is None:
                directive = _DIRECTIVE.search(comment)
                if directive and directive.group(1) == "ignore":
                    # An ignore directive that did not parse (missing
                    # brackets): misspellings must not silently disable
                    # checking.
                    self.findings.append(Finding(
                        "DET000", "error", self.path, line, 0,
                        f"malformed ignore comment (use `# detlint: ignore[RULE] why`): "
                        f"{comment.strip()!r}",
                    ))
                elif directive and directive.group(1) not in ("guarded", "holds"):
                    self.findings.append(Finding(
                        "DET000", "error", self.path, line, 0,
                        f"unknown detlint directive in comment: {comment.strip()!r}",
                    ))
                continue
            rules = {r.strip() for r in match.group(1).split(",") if r.strip()}
            justification = match.group(2).strip()
            if not rules:
                self.findings.append(Finding(
                    "DET000", "error", self.path, line, 0,
                    "ignore[] names no rule",
                ))
                continue
            if not justification:
                self.findings.append(Finding(
                    "DET000", "error", self.path, line, 0,
                    f"suppression of {', '.join(sorted(rules))} carries no justification "
                    "(write `# detlint: ignore[RULE] <why this is safe>`)",
                ))
            self.suppressions[line] = (rules, justification)

    def suppressed(self, line: int, rule_id: str) -> bool:
        """Is ``rule_id`` suppressed on ``line`` (same line or line above)?"""
        for probe in (line, line - 1):
            entry = self.suppressions.get(probe)
            if entry and rule_id in entry[0]:
                return True
        return False


def dotted_name(node: ast.AST) -> str | None:
    """``a.b.c`` for nested Name/Attribute chains, else ``None``."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


class Walker:
    """One traversal, shared structural context, multi-rule dispatch."""

    def __init__(self, ctx: FileContext, rules: list[Rule]):
        self.ctx = ctx
        self.rules = rules
        self.class_stack: list[ast.ClassDef] = []
        self.func_stack: list[ast.FunctionDef | ast.AsyncFunctionDef] = []
        self.with_locks: list[str] = []
        self.parents: dict[ast.AST, ast.AST] = {}
        # import alias -> real module path ("np" -> "numpy"); from-imports
        # map the bound name to "module.original".
        self.imports: dict[str, str] = {}
        self._dispatch: dict[type, list] = {}

    # ------------------------------------------------------------ context
    @property
    def current_class(self) -> ast.ClassDef | None:
        return self.class_stack[-1] if self.class_stack else None

    @property
    def current_function(self):
        return self.func_stack[-1] if self.func_stack else None

    def holding(self, lock: str) -> bool:
        """Is a ``with`` block over ``lock`` (or a holds() contract) active?"""
        for held in self.with_locks:
            if held == lock or held.endswith("." + lock):
                return True
        for func in self.func_stack:
            if self.ctx.declarations.holds.get((self.ctx.path, func.lineno)) == lock:
                return True
        return False

    def resolve(self, name: str) -> str | None:
        """The imported module / qualified name a bare name refers to."""
        return self.imports.get(name)

    # ----------------------------------------------------------- dispatch
    def _handlers(self, node_type: type) -> list:
        handlers = self._dispatch.get(node_type)
        if handlers is None:
            method = "visit_" + node_type.__name__
            handlers = [getattr(r, method) for r in self.rules if hasattr(r, method)]
            self._dispatch[node_type] = handlers
        return handlers

    def run(self) -> None:
        self._track_imports(self.ctx.tree)
        self._walk(self.ctx.tree)
        for rule in self.rules:
            rule.finish()

    def _track_imports(self, tree: ast.Module) -> None:
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    self.imports[alias.asname or alias.name.split(".")[0]] = alias.name
            elif isinstance(node, ast.ImportFrom) and node.module and node.level == 0:
                for alias in node.names:
                    self.imports[alias.asname or alias.name] = f"{node.module}.{alias.name}"

    def _walk(self, node: ast.AST) -> None:
        for handler in self._handlers(type(node)):
            handler(node)
        is_class = isinstance(node, ast.ClassDef)
        is_func = isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
        is_with = isinstance(node, (ast.With, ast.AsyncWith))
        if is_class:
            self.class_stack.append(node)
        if is_func:
            self.func_stack.append(node)
        pushed = 0
        if is_with:
            for item in node.items:
                name = dotted_name(item.context_expr)
                if name is None and isinstance(item.context_expr, ast.Call):
                    name = dotted_name(item.context_expr.func)
                if name is not None:
                    self.with_locks.append(name)
                    pushed += 1
        for child in ast.iter_child_nodes(node):
            self.parents[child] = node
            self._walk(child)
        if pushed:
            del self.with_locks[-pushed:]
        if is_func:
            self.func_stack.pop()
        if is_class:
            self.class_stack.pop()
