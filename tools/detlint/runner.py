"""detlint orchestration: discovery, caching, analysis, report building.

The analysis itself is one parse plus one traversal per file; the
expensive part at CI scale is doing that for files that have not changed
since the last run.  ``analyze_paths`` therefore keeps a JSON cache of
per-file findings keyed on the SHA-256 of the file's *source* plus a
global key covering the analyzer's own sources, the configuration, and
the repo-wide declaration set (DET004's guarded-by facts can change a
file's findings without that file changing, so they are part of the
key).  A cache hit replays recorded findings without re-walking the AST.
"""

from __future__ import annotations

import ast
import hashlib
import json
from pathlib import Path

from tools.detlint.config import Config, load_config
from tools.detlint.framework import (
    Declarations,
    FileContext,
    Finding,
    Walker,
    all_rules,
    collect_declarations,
    extract_comments,
)

__all__ = ["analyze_paths", "analyze_source", "discover_files"]

ANALYZER_VERSION = "1.0.0"
SCHEMA = "detlint/v1"


def discover_files(paths: list[str], repo_root: Path, config: Config) -> list[Path]:
    """Resolve the CLI path arguments to a sorted list of .py files."""
    seen: set[Path] = set()
    for raw in paths:
        target = (repo_root / raw).resolve() if not Path(raw).is_absolute() else Path(raw)
        if target.is_file() and target.suffix == ".py":
            seen.add(target)
            continue
        if not target.is_dir():
            raise FileNotFoundError(f"no such file or directory: {raw}")
        for candidate in target.rglob("*.py"):
            if "__pycache__" in candidate.parts:
                continue
            seen.add(candidate)
    out = []
    for path in sorted(seen):
        rel = _relpath(path, repo_root)
        if not config.excluded(rel):
            out.append(path)
    return out


def _relpath(path: Path, repo_root: Path) -> str:
    try:
        return path.resolve().relative_to(repo_root.resolve()).as_posix()
    except ValueError:
        return path.as_posix()


def analyze_source(rel_path: str, source: str, config: Config,
                   decls: Declarations) -> list[Finding]:
    """Analyze one file's source text; returns sorted findings."""
    try:
        tree = ast.parse(source)
    except SyntaxError as exc:
        return [Finding("DET000", "error", rel_path, exc.lineno or 1, 0,
                        f"syntax error: {exc.msg}")]
    ctx = FileContext(rel_path, source, tree, config, decls)
    rules = [
        cls(ctx, None)  # walker attached below
        for rule_id, cls in all_rules().items()
        if config.applies(rule_id, rel_path)
    ]
    walker = Walker(ctx, rules)
    for rule in rules:
        rule.walker = walker
    walker.run()
    return sorted(ctx.findings, key=Finding.sort_key)


def _analyzer_digest() -> str:
    """Hash of detlint's own sources — cache poison-pill on any edit."""
    digest = hashlib.sha256(ANALYZER_VERSION.encode())
    package_dir = Path(__file__).resolve().parent
    for source in sorted(package_dir.rglob("*.py")):
        digest.update(source.as_posix().encode())
        digest.update(source.read_bytes())
    return digest.hexdigest()


def _global_key(config: Config, decls: Declarations) -> str:
    payload = json.dumps({
        "analyzer": _analyzer_digest(),
        "config": config.source_text,
        "guarded": {k: dict(sorted(v.items())) for k, v in sorted(decls.guarded.items())},
        "holds": {f"{p}:{line}": lock for (p, line), lock in sorted(decls.holds.items())},
    }, sort_keys=True)
    return hashlib.sha256(payload.encode()).hexdigest()


def _load_cache(cache_path: Path | None, global_key: str) -> dict:
    if cache_path is None or not cache_path.is_file():
        return {}
    try:
        data = json.loads(cache_path.read_text(encoding="utf-8"))
    except (OSError, ValueError):
        return {}
    if data.get("schema") != SCHEMA or data.get("global_key") != global_key:
        return {}
    files = data.get("files")
    return files if isinstance(files, dict) else {}


def _save_cache(cache_path: Path | None, global_key: str, files: dict) -> None:
    if cache_path is None:
        return
    payload = {"schema": SCHEMA, "global_key": global_key, "files": files}
    try:
        cache_path.write_text(json.dumps(payload, sort_keys=True), encoding="utf-8")
    except OSError:
        pass  # a broken cache only costs time, never correctness


def analyze_paths(paths: list[str], repo_root: Path | None = None,
                  config_path: Path | None = None,
                  cache_path: Path | None = None) -> dict:
    """Run detlint over ``paths`` and build the ``detlint/v1`` report."""
    root = (repo_root or Path.cwd()).resolve()
    config = load_config(config_path, root)
    files = discover_files(paths, root, config)

    # Declarations pre-pass: always over every file (cheap — parse only),
    # because DET004 findings in file A depend on annotations in file B.
    decls = Declarations()
    sources: dict[Path, str] = {}
    for path in files:
        source = path.read_text(encoding="utf-8")
        sources[path] = source
        try:
            tree = ast.parse(source)
        except SyntaxError:
            continue  # analyze_source reports this per-file
        collect_declarations(_relpath(path, root), tree, extract_comments(source), decls)

    global_key = _global_key(config, decls)
    cache = _load_cache(cache_path, global_key)
    new_cache: dict[str, list] = {}

    findings: list[Finding] = []
    hits = 0
    for path in files:
        rel = _relpath(path, root)
        source = sources[path]
        digest = hashlib.sha256(source.encode()).hexdigest()
        cached = cache.get(digest)
        if cached is not None:
            hits += 1
            file_findings = [Finding.from_dict(d) for d in cached]
        else:
            file_findings = analyze_source(rel, source, config, decls)
        new_cache[digest] = [f.as_dict() for f in file_findings]
        findings.extend(file_findings)

    _save_cache(cache_path, global_key, new_cache)

    findings.sort(key=Finding.sort_key)
    counts: dict[str, int] = {}
    for finding in findings:
        counts[finding.rule] = counts.get(finding.rule, 0) + 1
    return {
        "schema": SCHEMA,
        "version": ANALYZER_VERSION,
        "files_checked": len(files),
        "cache_hits": hits,
        "findings": [f.as_dict() for f in findings],
        "counts": dict(sorted(counts.items())),
        "total": len(findings),
    }
