"""detlint — repo-specific determinism & concurrency static analysis.

Every guarantee this reproduction makes (bit-identical answers for every
worker count, backend, and hash seed) rests on code discipline that the
dynamic test suites can only check *after* the fact: seeded randomness,
order-stable iteration, picklable shard kernels, lock-protected shared
state, complete cache keys, and fork-safe pool startup.  ``detlint``
rejects the known violations of that discipline at lint time, from the
AST alone (stdlib ``ast`` only — no new dependencies).

Usage::

    python -m tools.detlint src/ tools/ benchmarks/
    python -m tools.detlint --format json --cache .detlint-cache.json src/

Rules (see ``docs/determinism.md`` for the contract each one guards):

========  ==========================================================
DET000    malformed or unjustified ``# detlint: ignore[...]`` comment
DET001    unseeded randomness / wall-clock reads in deterministic code
DET002    set/frozenset iteration order escaping into ordered output
DET003    non-module-level callables handed to ``ShardExecutor``
DET004    writes to ``guarded-by`` fields outside their lock
DET005    token functions missing determinism-relevant ctor params
DET006    thread creation before the shard pool ``prestart()``
========  ==========================================================

Inline suppression (requires a one-line justification)::

    risky_line()  # detlint: ignore[DET002] order-insensitive: builds a set

Configuration lives in ``detlint.toml`` at the repo root: per-rule path
scoping, the DET005 exemption manifest, DET003 executor names, etc.
"""

from tools.detlint.framework import Finding, Rule, all_rules
from tools.detlint.runner import analyze_paths, analyze_source

__version__ = "1.0.0"

__all__ = ["Finding", "Rule", "all_rules", "analyze_paths", "analyze_source", "__version__"]
