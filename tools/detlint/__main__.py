"""detlint CLI: ``python -m tools.detlint [paths...]``.

Exit codes: 0 clean, 1 findings, 2 usage/internal error — so CI can
distinguish "determinism violations found" from "the linter broke".
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from tools.detlint.framework import Finding, all_rules
from tools.detlint.runner import analyze_paths


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m tools.detlint",
        description="Determinism linter for the probabilistic-database engine.",
    )
    parser.add_argument("paths", nargs="*", default=["src", "tools", "benchmarks"],
                        help="files or directories to check (default: src tools benchmarks)")
    parser.add_argument("--format", choices=("text", "json"), default="text",
                        help="output format (json is the stable detlint/v1 schema)")
    parser.add_argument("--config", type=Path, default=None,
                        help="path to detlint.toml (default: <repo-root>/detlint.toml)")
    parser.add_argument("--root", type=Path, default=None,
                        help="repository root for relative paths (default: cwd)")
    parser.add_argument("--cache", type=Path, default=None,
                        help="JSON cache file; unchanged files replay cached findings")
    parser.add_argument("--list-rules", action="store_true",
                        help="print the registered rules and exit")
    parser.add_argument("-q", "--quiet", action="store_true",
                        help="suppress the summary line in text mode")
    return parser


def main(argv: list[str] | None = None) -> int:
    args = _build_parser().parse_args(argv)
    if args.list_rules:
        for rule_id, cls in all_rules().items():
            print(f"{rule_id}  [{cls.severity:7s}]  {cls.description}")
        return 0
    try:
        report = analyze_paths(
            args.paths,
            repo_root=args.root,
            config_path=args.config,
            cache_path=args.cache,
        )
    except (FileNotFoundError, ValueError) as exc:
        print(f"detlint: error: {exc}", file=sys.stderr)
        return 2

    if args.format == "json":
        print(json.dumps(report, indent=2, sort_keys=True))
    else:
        for data in report["findings"]:
            print(Finding.from_dict(data).render())
        if not args.quiet:
            counts = ", ".join(f"{k}: {v}" for k, v in report["counts"].items()) or "clean"
            print(f"detlint: {report['files_checked']} files, "
                  f"{report['total']} findings ({counts})")
    return 1 if report["total"] else 0


if __name__ == "__main__":
    sys.exit(main())
