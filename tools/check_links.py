#!/usr/bin/env python3
"""Check intra-repo markdown links in README.md and docs/.

Every relative ``[text](target)`` link must point at an existing file,
and when the target carries a ``#fragment`` the destination file must
contain a heading whose GitHub-style slug matches.  External links
(``http(s)://``, ``mailto:``) are skipped.  Exits non-zero listing every
broken link, so CI can gate on it.
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent

# [text](target) — but not images' alt text brackets or reference-style
# definitions; nested parens inside the target (rare) are not supported.
LINK = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
HEADING = re.compile(r"^#{1,6}\s+(.*)$", re.MULTILINE)
FENCE = re.compile(r"^(```|~~~).*?^\1\s*$", re.MULTILINE | re.DOTALL)
INLINE_CODE = re.compile(r"`[^`\n]*`")
EXTERNAL = ("http://", "https://", "mailto:")


def slugify(heading: str) -> str:
    """GitHub's anchor slug: lowercase, drop punctuation, spaces to dashes."""
    text = re.sub(r"[`*_]", "", heading.strip()).lower()
    text = re.sub(r"[^\w\- ]", "", text, flags=re.UNICODE)
    return text.replace(" ", "-")


def anchors_of(path: Path) -> set[str]:
    text = FENCE.sub("", path.read_text(encoding="utf-8"))
    return {slugify(m.group(1)) for m in HEADING.finditer(text)}


def links_of(path: Path) -> list[str]:
    text = FENCE.sub("", path.read_text(encoding="utf-8"))
    text = INLINE_CODE.sub("", text)
    return [m.group(1) for m in LINK.finditer(text)]


def check(files: list[Path]) -> list[str]:
    errors = []
    for source in files:
        for target in links_of(source):
            if target.startswith(EXTERNAL):
                continue
            raw, _, fragment = target.partition("#")
            dest = source if not raw else (source.parent / raw).resolve()
            if not dest.is_file():
                errors.append(f"{source.relative_to(REPO)}: broken link -> {target}")
                continue
            if fragment and dest.suffix == ".md" and slugify(fragment) not in anchors_of(dest):
                errors.append(f"{source.relative_to(REPO)}: missing anchor -> {target}")
    return errors


def main() -> int:
    files = [REPO / "README.md", *sorted((REPO / "docs").glob("*.md"))]
    missing = [f for f in files if not f.is_file()]
    if missing:
        for f in missing:
            print(f"missing file: {f}", file=sys.stderr)
        return 2
    errors = check(files)
    for error in errors:
        print(error, file=sys.stderr)
    print(f"checked {len(files)} files: {len(errors)} broken links")
    return 1 if errors else 0


if __name__ == "__main__":
    raise SystemExit(main())
