#!/usr/bin/env python3
"""Check intra-repo markdown links in README.md and docs/.

Three link shapes are validated:

* inline ``[text](target)`` links;
* reference-style ``[text][ref]`` uses — the ``[ref]: url`` definition
  must exist (case-insensitive, ``[text][]`` collapses to the text) and
  its URL is checked like any other target;
* relative ``<a href="...">`` targets in embedded HTML.

Every relative target must point at an existing file, and when it
carries a ``#fragment`` the destination file must contain a heading
whose GitHub-style slug matches.  External links (``http(s)://``,
``mailto:``) are skipped.  Exits non-zero listing every broken link, so
CI can gate on it.
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent

# [text](target) — but not images' alt text brackets or reference-style
# definitions; nested parens inside the target (rare) are not supported.
LINK = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
# [ref]: url definition lines (footnote definitions [^1]: are excluded
# in code, not the regex) and [text][ref] uses ([text][] collapses).
REF_DEF = re.compile(r"^ {0,3}\[([^\]]+)\]:\s*(\S+)", re.MULTILINE)
REF_USE = re.compile(r"\[([^\]]+)\]\[([^\]]*)\]")
HTML_HREF = re.compile(r"""<a\s[^>]*href=["']([^"']+)["']""", re.IGNORECASE)
HEADING = re.compile(r"^#{1,6}\s+(.*)$", re.MULTILINE)
FENCE = re.compile(r"^(```|~~~).*?^\1\s*$", re.MULTILINE | re.DOTALL)
INLINE_CODE = re.compile(r"`[^`\n]*`")
EXTERNAL = ("http://", "https://", "mailto:")


def slugify(heading: str) -> str:
    """GitHub's anchor slug: lowercase, drop punctuation, spaces to dashes."""
    text = re.sub(r"[`*_]", "", heading.strip()).lower()
    text = re.sub(r"[^\w\- ]", "", text, flags=re.UNICODE)
    return text.replace(" ", "-")


def anchors_of(path: Path) -> set[str]:
    text = FENCE.sub("", path.read_text(encoding="utf-8"))
    return {slugify(m.group(1)) for m in HEADING.finditer(text)}


def links_of(path: Path) -> tuple[list[str], list[str]]:
    """All link targets in ``path``, plus undefined-reference errors."""
    text = FENCE.sub("", path.read_text(encoding="utf-8"))
    text = INLINE_CODE.sub("", text)
    targets = [m.group(1) for m in LINK.finditer(text)]
    defs = {
        m.group(1).strip().lower(): m.group(2)
        for m in REF_DEF.finditer(text)
        if not m.group(1).startswith("^")  # footnotes are not links
    }
    errors = []
    for m in REF_USE.finditer(text):
        ref = (m.group(2) or m.group(1)).strip().lower()
        if ref.startswith("^"):
            continue
        if ref not in defs:
            errors.append(f"undefined link reference -> [{ref}]")
    # Definition URLs are validated whether or not they are used; HTML
    # anchors are checked only when relative (external ones are skipped
    # by the caller like any other target).
    targets.extend(defs.values())
    targets.extend(m.group(1) for m in HTML_HREF.finditer(text))
    return targets, errors


def check(files: list[Path]) -> list[str]:
    errors = []
    for source in files:
        targets, ref_errors = links_of(source)
        errors.extend(f"{source.relative_to(REPO)}: {err}" for err in ref_errors)
        for target in targets:
            if target.startswith(EXTERNAL):
                continue
            raw, _, fragment = target.partition("#")
            dest = source if not raw else (source.parent / raw).resolve()
            if not dest.is_file():
                errors.append(f"{source.relative_to(REPO)}: broken link -> {target}")
                continue
            if fragment and dest.suffix == ".md" and slugify(fragment) not in anchors_of(dest):
                errors.append(f"{source.relative_to(REPO)}: missing anchor -> {target}")
    return errors


def main() -> int:
    files = [REPO / "README.md", *sorted((REPO / "docs").glob("*.md"))]
    missing = [f for f in files if not f.is_file()]
    if missing:
        for f in missing:
            print(f"missing file: {f}", file=sys.stderr)
        return 2
    errors = check(files)
    for error in errors:
        print(error, file=sys.stderr)
    print(f"checked {len(files)} files: {len(errors)} broken links")
    return 1 if errors else 0


if __name__ == "__main__":
    raise SystemExit(main())
